"""End-to-end robustness: masked estimation payoff, benchmark CLI,
and cross-executor corruption determinism."""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from xml.etree import ElementTree

import numpy as np
import pytest

from repro.cli import main
from repro.core.tends import Tends
from repro.evaluation.metrics import evaluate_edges
from repro.graphs import erdos_renyi_digraph
from repro.robustness import corrupt, missing_at_random
from repro.simulation import DiffusionSimulator
from repro.simulation.statuses import StatusMatrix


@pytest.fixture(scope="module")
def corrupted_setting():
    truth = erdos_renyi_digraph(25, 0.12, seed=11)
    observations = DiffusionSimulator(truth, mu=0.3, alpha=0.15, seed=11).run(
        beta=120
    )
    masked = missing_at_random(observations.statuses, 0.25, seed=4).statuses
    return truth, masked


def test_pairwise_beats_zero_fill_under_missing_data(corrupted_setting):
    """Acceptance criterion: at >= 20% missing-at-random, the
    pairwise-complete estimator recovers a strictly better F-score than
    pretending unobserved means uninfected."""
    truth, masked = corrupted_setting
    pairwise = Tends(missing="pairwise", audit="ignore").fit(masked)
    zero_fill = Tends(missing="zero-fill", audit="ignore").fit(masked)
    f_pairwise = evaluate_edges(truth, pairwise.graph).f_score
    f_zero_fill = evaluate_edges(truth, zero_fill.graph).f_score
    assert f_pairwise > f_zero_fill
    # The gap is substantial at this corruption level, not a tie-break.
    assert f_pairwise - f_zero_fill > 0.02


def test_stable_threshold_runs_on_corrupted_data(corrupted_setting):
    _, masked = corrupted_setting
    result = Tends(
        threshold="stable", bootstrap_samples=20, audit="ignore"
    ).fit(masked)
    assert result.edge_confidence is not None
    assert all(0.0 <= c <= 1.0 for c in result.edge_confidence.values())


# ----------------------------------------------------------------------
# Cross-executor determinism (corruption seeds flow through SeedSequence
# spawning, so worker processes/threads must reproduce the serial draw).

def _corruption_digest(seed: int) -> bytes:
    rng = np.random.default_rng(0)
    clean = StatusMatrix((rng.random((40, 10)) < 0.4).astype(int))
    record = corrupt(clean, "missing", 0.3, seed=seed)
    flip = corrupt(record.statuses, "flip", 0.1, seed=seed + 1)
    return flip.statuses.values.tobytes() + flip.statuses.mask.tobytes()


def test_corruption_identical_across_executors():
    seeds = [3, 17, 91]
    serial = [_corruption_digest(s) for s in seeds]
    with ThreadPoolExecutor(max_workers=3) as pool:
        threaded = list(pool.map(_corruption_digest, seeds))
    with ProcessPoolExecutor(max_workers=2) as pool:
        processed = list(pool.map(_corruption_digest, seeds))
    assert serial == threaded == processed


# ----------------------------------------------------------------------
# Benchmark CLI end to end (quick scale, tiny sweep), with resume.

@pytest.mark.slow
def test_figure_robustness_cli_end_to_end(tmp_path: Path, capsys):
    out = tmp_path / "out"
    checkpoints = tmp_path / "checkpoints"
    argv = [
        "figure",
        "robustness",
        "--scale",
        "quick",
        "--out",
        str(out),
        "--checkpoint-dir",
        str(checkpoints),
    ]
    assert main(argv) == 0
    captured = capsys.readouterr().out
    assert "flip" in captured and "missing" in captured

    # Archives: one JSON per corruption kind, plus the SVG figure.
    for kind in ("flip", "missing"):
        archive = out / f"robustness-{kind}.json"
        assert archive.is_file()
        payload = json.loads(archive.read_text())
        rates = {point["value"] for point in payload["spec"]["points"]}
        assert len(rates) >= 3  # >= 3 corruption rates swept
    svg = out / "robustness.svg"
    assert svg.is_file()
    root = ElementTree.fromstring(svg.read_text())
    assert root.tag.endswith("svg")
    assert len(root.findall(".//{http://www.w3.org/2000/svg}polyline")) >= 2

    # Checkpoints were written per kind; a resumed run completes from
    # them (and fast — every cell is already recorded).
    assert list(checkpoints.glob("robustness-*.checkpoint.jsonl"))
    assert main(argv + ["--resume"]) == 0
    resumed = capsys.readouterr().out
    assert "flip" in resumed and "missing" in resumed


@pytest.mark.slow
def test_infer_cli_applies_corruption_and_bootstrap(tmp_path: Path, capsys):
    graph_path = tmp_path / "graph.txt"
    statuses_path = tmp_path / "statuses.csv"
    inferred_path = tmp_path / "inferred.txt"
    assert (
        main(["generate", "er", "--n", "20", "--seed", "5", "-o", str(graph_path)])
        == 0
    )
    assert (
        main(
            [
                "simulate",
                str(graph_path),
                "--beta",
                "60",
                "--seed",
                "5",
                "-o",
                str(statuses_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            [
                "infer",
                str(statuses_path),
                "--missing-rate",
                "0.2",
                "--flip-rate",
                "0.05",
                "--bootstrap",
                "15",
                "--audit",
                "ignore",
                "-o",
                str(inferred_path),
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "corrupted: kind=flip" in output
    assert "corrupted: kind=missing" in output
    assert "edge confidence" in output
    assert inferred_path.is_file()
