"""Backend equivalence: parallelism must never change the inferred graph.

For every fixture topology (ER, power-law, LFR) the serial reference run
and every (executor, n_jobs) combination must agree on the parent sets,
the threshold, the edge set, and the per-node diagnostics counts — not
just approximately, but exactly.  This is the contract that makes the
parallel backends safe to enable anywhere.
"""

from __future__ import annotations

import pytest

from repro.core.tends import Tends, TendsResult
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.generators.random_graphs import (
    barabasi_albert_digraph,
    erdos_renyi_digraph,
)
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.statuses import StatusMatrix

BACKENDS = ["serial", "thread", "process"]
WORKER_COUNTS = [1, 2, 4]


def _simulate(graph, seed: int, beta: int = 80) -> StatusMatrix:
    return DiffusionSimulator(graph, mu=0.3, alpha=0.15, seed=seed).run(beta).statuses


@pytest.fixture(scope="module")
def fixture_statuses() -> dict[str, StatusMatrix]:
    return {
        "er": _simulate(erdos_renyi_digraph(30, 0.1, seed=7), seed=1),
        "powerlaw": _simulate(barabasi_albert_digraph(36, 2, seed=8), seed=2),
        "lfr": _simulate(
            lfr_benchmark_graph(LFRParams(n=48, avg_degree=4), seed=9), seed=3
        ),
    }


@pytest.fixture(scope="module")
def serial_reference(fixture_statuses) -> dict[str, TendsResult]:
    return {
        name: Tends().fit(statuses) for name, statuses in fixture_statuses.items()
    }


def _assert_equivalent(reference: TendsResult, candidate: TendsResult) -> None:
    assert candidate.parent_sets == reference.parent_sets
    assert candidate.threshold == reference.threshold
    assert candidate.graph.edge_set() == reference.graph.edge_set()
    assert candidate.graph.n_nodes == reference.graph.n_nodes
    for ref_diag, cand_diag in zip(reference.diagnostics, candidate.diagnostics):
        assert cand_diag.node == ref_diag.node
        assert cand_diag.n_candidates == ref_diag.n_candidates
        assert cand_diag.n_evaluations == ref_diag.n_evaluations
        assert cand_diag.iterations == ref_diag.iterations
        assert cand_diag.bound_hits == ref_diag.bound_hits
        assert cand_diag.final_score == ref_diag.final_score
        assert cand_diag.empty_score == ref_diag.empty_score


@pytest.mark.parametrize("n_jobs", WORKER_COUNTS)
@pytest.mark.parametrize("executor", BACKENDS)
@pytest.mark.parametrize("fixture_name", ["er", "powerlaw", "lfr"])
def test_backend_matches_serial_reference(
    fixture_name, executor, n_jobs, fixture_statuses, serial_reference
):
    statuses = fixture_statuses[fixture_name]
    result = Tends(executor=executor, n_jobs=n_jobs).fit(statuses)
    _assert_equivalent(serial_reference[fixture_name], result)


@pytest.mark.parametrize("chunk_size", [1, 3, 17, 1000])
def test_chunk_size_never_changes_results(chunk_size, fixture_statuses, serial_reference):
    statuses = fixture_statuses["er"]
    result = Tends(executor="thread", n_jobs=4, chunk_size=chunk_size).fit(statuses)
    _assert_equivalent(serial_reference["er"], result)


def test_ranked_union_strategy_parallel_equivalence(fixture_statuses):
    statuses = fixture_statuses["er"]
    reference = Tends(search_strategy="ranked-union").fit(statuses)
    for executor in ("thread", "process"):
        result = Tends(
            search_strategy="ranked-union", executor=executor, n_jobs=4
        ).fit(statuses)
        _assert_equivalent(reference, result)


def test_worker_stats_cover_every_node(fixture_statuses):
    statuses = fixture_statuses["lfr"]
    result = Tends(executor="thread", n_jobs=4).fit(statuses)
    assert sum(s.n_items for s in result.worker_stats) == statuses.n_nodes
    for stats in result.worker_stats:
        assert f"search/{stats.worker}" in result.stage_seconds
