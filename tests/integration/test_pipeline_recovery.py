"""End-to-end recovery: simulate on a known graph, infer, score.

These tests pin the accuracy floor of the whole pipeline on controlled
topologies.  Thresholds are deliberately conservative (well below what the
benches report) so the tests stay robust to RNG implementation details
while still catching real regressions.
"""

import pytest

from repro.core.tends import Tends
from repro.evaluation.metrics import evaluate_edges
from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator


def _simulate(graph, *, beta=150, mu=0.35, alpha=0.15, seed=0):
    return DiffusionSimulator(graph, mu=mu, alpha=alpha, seed=seed).run(beta=beta)


class TestReciprocalPairRecovery:
    def test_two_coupled_nodes(self):
        truth = DiffusionGraph(6, [(0, 1), (1, 0), (2, 3), (3, 2)]).freeze()
        result = _simulate(truth, beta=250, mu=0.5, alpha=0.2)
        inferred = Tends().fit(result.statuses)
        metrics = evaluate_edges(truth, inferred.graph)
        assert metrics.recall >= 0.75
        assert metrics.precision >= 0.75


class TestLfrRecovery:
    def test_reciprocal_lfr_above_half_f(self):
        truth = lfr_benchmark_graph(LFRParams(n=150, avg_degree=4), seed=2)
        result = _simulate(truth, mu=0.3, seed=3)
        inferred = Tends().fit(result.statuses)
        metrics = evaluate_edges(truth, inferred.graph)
        assert metrics.f_score > 0.5

    def test_more_data_helps(self):
        truth = lfr_benchmark_graph(LFRParams(n=120, avg_degree=4), seed=4)
        simulator_args = dict(mu=0.3, alpha=0.15)
        few = DiffusionSimulator(truth, seed=5, **simulator_args).run(beta=50)
        many = DiffusionSimulator(truth, seed=5, **simulator_args).run(beta=300)
        f_few = evaluate_edges(truth, Tends().fit(few.statuses).graph).f_score
        f_many = evaluate_edges(truth, Tends().fit(many.statuses).graph).f_score
        assert f_many > f_few

    def test_direction_blindness_on_random_orientation(self):
        """On a randomly oriented LFR graph the undirected F-score must be
        far higher than the directed one — the structural limit discussed
        in DESIGN.md §4."""
        truth = lfr_benchmark_graph(
            LFRParams(n=150, avg_degree=4, orientation="random"), seed=6
        )
        result = _simulate(truth, seed=7)
        inferred = Tends().fit(result.statuses).graph
        directed = evaluate_edges(truth, inferred)
        undirected = evaluate_edges(truth, inferred, undirected=True)
        assert undirected.f_score > directed.f_score + 0.1


class TestPruningEffect:
    def test_pruning_reduces_work_without_hurting_f(self):
        truth = lfr_benchmark_graph(LFRParams(n=100, avg_degree=4), seed=8)
        result = _simulate(truth, seed=9)
        pruned = Tends().fit(result.statuses)
        unpruned = Tends(threshold=1e-6).fit(result.statuses)
        assert pruned.total_evaluations() < unpruned.total_evaluations()
        pruned_f = evaluate_edges(truth, pruned.graph).f_score
        unpruned_f = evaluate_edges(truth, unpruned.graph).f_score
        assert pruned_f >= unpruned_f - 0.05

    def test_mi_pruning_weaker_than_imi(self):
        """Traditional MI keeps anti-correlated candidates, so the
        candidate sets are at least as large as with infection MI."""
        truth = lfr_benchmark_graph(LFRParams(n=100, avg_degree=4), seed=10)
        result = _simulate(truth, seed=11)
        imi = Tends(mi_kind="infection").fit(result.statuses)
        mi = Tends(mi_kind="traditional").fit(result.statuses)
        assert mi.candidate_counts().sum() >= imi.candidate_counts().sum() * 0.8


class TestSearchStrategies:
    def test_both_strategies_work_end_to_end(self):
        truth = lfr_benchmark_graph(LFRParams(n=100, avg_degree=4), seed=12)
        result = _simulate(truth, seed=13)
        for strategy in ("greedy-rescoring", "ranked-union"):
            inferred = Tends(search_strategy=strategy).fit(result.statuses)
            metrics = evaluate_edges(truth, inferred.graph)
            assert metrics.f_score > 0.35, strategy
