"""Every example script must run end-to-end at a reduced scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestQuickstart:
    def test_runs_and_reports_fscore(self):
        proc = _run("quickstart.py", "--n", "60", "--beta", "80")
        assert proc.returncode == 0, proc.stderr
        assert "F-score" in proc.stdout
        assert "ground truth" in proc.stdout


class TestEpidemicSurveillance:
    def test_runs_with_noise_sweep(self):
        proc = _run("epidemic_surveillance.py", "--n", "60", "--beta", "80")
        assert proc.returncode == 0, proc.stderr
        assert "clean statuses" in proc.stdout
        assert "misreport" in proc.stdout


class TestViralMarketing:
    def test_runs_and_shortlists_influencers(self):
        proc = _run("viral_marketing.py", "--n", "80", "--beta", "60")
        assert proc.returncode == 0, proc.stderr
        assert "method comparison" in proc.stdout
        assert "seed shortlist" in proc.stdout


class TestNetworkDiagnostics:
    def test_runs_full_diagnostics(self):
        proc = _run("network_diagnostics.py", "--n", "60", "--beta", "80",
                    "--campaign-seeds", "2")
        assert proc.returncode == 0, proc.stderr
        assert "structural report" in proc.stdout
        assert "community structure" in proc.stdout
        assert "campaign planning" in proc.stdout


class TestReproduceFigure:
    def test_list_mode(self):
        proc = _run("reproduce_figure.py", "--list")
        assert proc.returncode == 0, proc.stderr
        assert "fig1" in proc.stdout and "fig11" in proc.stdout

    def test_unknown_figure_fails_cleanly(self):
        proc = _run("reproduce_figure.py", "fig99")
        assert proc.returncode != 0

    @pytest.mark.slow
    def test_quick_fig3_runs(self):
        proc = _run("reproduce_figure.py", "fig3", "--scale", "quick")
        assert proc.returncode == 0, proc.stderr
        assert "TENDS" in proc.stdout
        assert "points:" in proc.stdout
