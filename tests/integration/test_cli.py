"""Command-line interface: each command and the full pipeline."""

import pytest

from repro.cli import main
from repro.graphs.io import read_edge_list


@pytest.fixture
def workspace(tmp_path):
    return tmp_path


class TestGenerate:
    @pytest.mark.parametrize("kind", ["lfr", "er", "ba", "tree"])
    def test_kinds(self, workspace, kind, capsys):
        output = workspace / "g.txt"
        code = main(
            ["generate", kind, "--n", "40", "--seed", "1", "-o", str(output)]
        )
        assert code == 0
        graph = read_edge_list(output)
        assert graph.n_nodes == 40
        assert "wrote" in capsys.readouterr().out

    def test_json_output(self, workspace):
        output = workspace / "g.json"
        assert main(["generate", "er", "--n", "20", "-o", str(output)]) == 0
        from repro.graphs.io import read_json

        assert read_json(output).n_nodes == 20

    def test_netsci_fixed_size(self, workspace):
        output = workspace / "netsci.txt"
        assert main(["generate", "netsci", "-o", str(output)]) == 0
        assert read_edge_list(output).n_edges == 1602


class TestPipeline:
    def test_generate_simulate_infer_evaluate(self, workspace, capsys):
        truth = workspace / "truth.txt"
        statuses = workspace / "statuses.csv"
        inferred = workspace / "inferred.txt"

        assert main(["generate", "lfr", "--n", "60", "-o", str(truth)]) == 0
        assert (
            main(
                [
                    "simulate",
                    str(truth),
                    "--beta",
                    "100",
                    "--seed",
                    "3",
                    "-o",
                    str(statuses),
                ]
            )
            == 0
        )
        assert main(["infer", str(statuses), "-o", str(inferred)]) == 0
        assert main(["evaluate", str(truth), str(inferred)]) == 0
        out = capsys.readouterr().out
        assert "F-score" in out
        assert "tau" in out

    def test_npz_statuses_path(self, workspace):
        truth = workspace / "truth.txt"
        statuses = workspace / "statuses.npz"
        inferred = workspace / "inferred.txt"
        assert main(["generate", "er", "--n", "30", "--density", "0.1", "-o", str(truth)]) == 0
        assert main(["simulate", str(truth), "--beta", "60", "-o", str(statuses)]) == 0
        assert main(["infer", str(statuses), "-o", str(inferred)]) == 0

    def test_cascades_side_output(self, workspace):
        truth = workspace / "truth.txt"
        statuses = workspace / "s.csv"
        cascades = workspace / "c.jsonl"
        assert main(["generate", "tree", "--n", "20", "-o", str(truth)]) == 0
        assert (
            main(
                [
                    "simulate",
                    str(truth),
                    "--beta",
                    "20",
                    "-o",
                    str(statuses),
                    "--cascades",
                    str(cascades),
                ]
            )
            == 0
        )
        from repro.simulation.io import read_cascades_jsonl

        assert read_cascades_jsonl(cascades).beta == 20

    def test_estimate_probabilities(self, workspace, capsys):
        truth = workspace / "truth.txt"
        statuses = workspace / "s.csv"
        probs = workspace / "p.txt"
        assert main(["generate", "lfr", "--n", "50", "-o", str(truth)]) == 0
        assert main(["simulate", str(truth), "--beta", "80", "-o", str(statuses)]) == 0
        assert (
            main(
                [
                    "estimate-probabilities",
                    str(truth),
                    str(statuses),
                    "-o",
                    str(probs),
                ]
            )
            == 0
        )
        lines = probs.read_text().strip().splitlines()
        assert len(lines) == 200  # 50 nodes * avg degree 4


class TestInferOptions:
    def test_tuned_inference_flags(self, workspace):
        truth = workspace / "t.txt"
        statuses = workspace / "s.csv"
        inferred = workspace / "i.txt"
        assert main(["generate", "lfr", "--n", "50", "-o", str(truth)]) == 0
        assert main(["simulate", str(truth), "--beta", "80", "-o", str(statuses)]) == 0
        code = main(
            [
                "infer",
                str(statuses),
                "--mi-kind",
                "traditional",
                "--threshold-scale",
                "1.5",
                "--search-strategy",
                "ranked-union",
                "-o",
                str(inferred),
            ]
        )
        assert code == 0

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executor_flags_do_not_change_the_graph(
        self, workspace, executor, capsys
    ):
        truth = workspace / "t.txt"
        statuses = workspace / "s.csv"
        serial_out = workspace / "serial.txt"
        parallel_out = workspace / f"{executor}.txt"
        assert main(["generate", "lfr", "--n", "40", "-o", str(truth)]) == 0
        assert main(["simulate", str(truth), "--beta", "60", "-o", str(statuses)]) == 0
        assert main(["infer", str(statuses), "-o", str(serial_out)]) == 0
        code = main(
            [
                "infer",
                str(statuses),
                "--executor",
                executor,
                "--n-jobs",
                "2",
                "--chunk-size",
                "8",
                "--verbose-timing",
                "-o",
                str(parallel_out),
            ]
        )
        assert code == 0
        assert parallel_out.read_text() == serial_out.read_text()
        out = capsys.readouterr().out
        assert "search" in out  # verbose timing breakdown printed


class TestReport:
    def test_report_from_archive(self, workspace, capsys):
        from repro.baselines.base import TendsInferrer
        from repro.evaluation.archive import save_result
        from repro.evaluation.harness import (
            ExperimentSpec,
            MethodSpec,
            SweepPoint,
            run_experiment,
        )
        from repro.graphs.generators.random_graphs import erdos_renyi_digraph

        spec = ExperimentSpec(
            experiment_id="cli-report",
            title="CLI report demo",
            x_label="n",
            points=(
                SweepPoint(
                    "n=10", 10, lambda s: erdos_renyi_digraph(10, 0.2, seed=s), beta=20
                ),
            ),
            methods=(MethodSpec("TENDS", lambda ctx: TendsInferrer()),),
        )
        archive = workspace / "cli-report.json"
        save_result(run_experiment(spec, seed=0), archive)

        out_file = workspace / "report.md"
        assert main(["report", str(archive), "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "CLI report demo" in text
        assert "**F-score**" in text

    def test_report_without_archives_is_usage_error(self, capsys):
        assert main(["report"]) == 2


class TestAnalyzeAndInfluence:
    def test_analyze_report(self, workspace, capsys):
        truth = workspace / "t.txt"
        assert main(["generate", "lfr", "--n", "50", "-o", str(truth)]) == 0
        assert main(["analyze", str(truth), str(truth)]) == 0
        out = capsys.readouterr().out
        assert "f_score" in out
        assert "hub_overlap" in out
        assert "1.0000" in out  # self-comparison is perfect

    def test_influence_uniform(self, workspace, capsys):
        graph = workspace / "g.txt"
        assert main(["generate", "ba", "--n", "30", "-o", str(graph)]) == 0
        code = main(
            ["influence", str(graph), "--k", "2", "--samples", "30", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-2 seeds" in out
        assert "expected spread" in out

    def test_influence_with_estimated_probabilities(self, workspace, capsys):
        truth = workspace / "t.txt"
        statuses = workspace / "s.csv"
        assert main(["generate", "lfr", "--n", "40", "-o", str(truth)]) == 0
        assert main(["simulate", str(truth), "--beta", "60", "-o", str(statuses)]) == 0
        code = main(
            [
                "influence",
                str(truth),
                "--k",
                "2",
                "--statuses",
                str(statuses),
                "--samples",
                "20",
            ]
        )
        assert code == 0
        assert "estimated from statuses" in capsys.readouterr().out


class TestFigure:
    def test_list(self, capsys):
        assert main(["figure", "--list"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_missing_figure_id_is_usage_error(self, capsys):
        assert main(["figure"]) == 2

    def test_figure_archive_output(self, workspace, capsys, monkeypatch):
        # Shrink fig3 to a single tiny run by monkeypatching the spec.
        import repro.cli as cli_module
        from repro.evaluation.figures import figure_spec as real_spec

        def tiny_spec(figure_id, scale="full"):
            spec = real_spec(figure_id, scale="quick")
            from dataclasses import replace

            return replace(spec, points=spec.points[:1], methods=spec.methods[:1])

        monkeypatch.setattr(cli_module, "figure_spec", tiny_spec)
        out_dir = workspace / "archives"
        code = main(["figure", "fig3", "--out", str(out_dir)])
        assert code == 0
        assert (out_dir / "fig3.json").exists()
        from repro.evaluation.archive import load_result

        assert load_result(out_dir / "fig3.json").spec.experiment_id == "fig3"

    def test_repro_error_is_clean_exit(self, workspace, capsys):
        missing = workspace / "does-not-exist.csv"
        missing.write_text("")  # empty -> DataError from the reader
        code = main(["infer", str(missing), "-o", str(workspace / "x.txt")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestUpdate:
    def test_infer_checkpoint_then_update(self, workspace, capsys):
        truth = workspace / "truth.txt"
        statuses = workspace / "statuses.csv"
        batch = workspace / "batch.csv"
        model = workspace / "model.npz"
        graph_out = workspace / "updated.txt"
        assert main(["generate", "er", "--n", "24", "--density", "0.12",
                     "--seed", "5", "-o", str(truth)]) == 0
        assert main(["simulate", str(truth), "--beta", "80", "--seed", "3",
                     "-o", str(statuses)]) == 0
        assert main(["simulate", str(truth), "--beta", "20", "--seed", "4",
                     "-o", str(batch)]) == 0
        assert main(["infer", str(statuses),
                     "-o", str(workspace / "initial.txt"),
                     "--model-out", str(model)]) == 0
        assert model.exists()

        code = main(["update", "--model-in", str(model), "--batch", str(batch),
                     "--model-out", str(model), "-o", str(graph_out)])
        assert code == 0
        out = capsys.readouterr().out
        assert "absorbed 20 processes" in out
        assert "history now 100" in out

        # The CLI chain must agree with the in-process incremental path.
        from repro.core.tends import Tends
        from repro.simulation import io as sim_io

        first = sim_io.read_statuses_csv(statuses)
        estimator = Tends()
        estimator.fit(first)
        expected = estimator.partial_fit(sim_io.read_statuses_csv(batch))
        assert read_edge_list(graph_out).edge_set() == set(
            expected.graph.edge_set()
        )

        # And the re-written checkpoint keeps absorbing batches.
        assert main(["update", "--model-in", str(model),
                     "--batch", str(batch), "--model-out", str(model)]) == 0

    def test_update_refuses_corrupt_model(self, workspace, capsys):
        bad = workspace / "bad.npz"
        bad.write_bytes(b"definitely not a model")
        batch = workspace / "batch.csv"
        truth = workspace / "truth.txt"
        assert main(["generate", "er", "--n", "10", "-o", str(truth)]) == 0
        assert main(["simulate", str(truth), "--beta", "10",
                     "-o", str(batch)]) == 0
        code = main(["update", "--model-in", str(bad), "--batch", str(batch),
                     "--model-out", str(workspace / "out.npz")])
        assert code == 1
        assert "error:" in capsys.readouterr().err
