"""CLI observability: trace/metrics/manifest outputs, perf-check, -v flag."""

import json
import logging

import pytest

from repro.cli import main
from repro.obs.manifest import load_manifest
from repro.utils.logging import get_logger


@pytest.fixture
def statuses_file(tmp_path):
    truth = tmp_path / "truth.txt"
    statuses = tmp_path / "statuses.csv"
    assert main(["generate", "er", "--n", "25", "--seed", "7",
                 "-o", str(truth)]) == 0
    assert main(["simulate", str(truth), "--beta", "80", "--seed", "3",
                 "-o", str(statuses)]) == 0
    return statuses


@pytest.fixture(autouse=True)
def _reset_repro_logging():
    """The -v flag mutates the package logger; restore it per test."""
    logger = get_logger()
    level, handlers = logger.level, list(logger.handlers)
    yield
    logger.setLevel(level)
    logger.handlers[:] = handlers


class TestInferObservability:
    def test_trace_metrics_manifest_outputs(self, tmp_path, statuses_file):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        manifest = tmp_path / "run.json"
        code = main([
            "infer", str(statuses_file),
            "-o", str(tmp_path / "inferred.txt"),
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
            "--manifest-out", str(manifest),
        ])
        assert code == 0

        document = json.loads(trace.read_text())
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert {"tends.fit", "tends.imi", "tends.threshold",
                "tends.search"} <= names

        prom = metrics.read_text()
        assert "# TYPE repro_tends_imi_pairs_total counter" in prom

        loaded = load_manifest(manifest)
        assert loaded["kind"] == "tends.fit"
        assert loaded["metrics"]["counters"]["tends_imi_pairs_total"] == 300
        assert "tends_candidate_pairs_pruned_total" in (
            loaded["metrics"]["counters"]
        )
        assert "tends_score_evaluations_total" in (
            loaded["metrics"]["counters"]
        )
        assert loaded["extra"]["statuses"].endswith("statuses.csv")

    def test_jsonl_trace_suffix_switches_format(self, tmp_path, statuses_file):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "infer", str(statuses_file),
            "-o", str(tmp_path / "inferred.txt"),
            "--trace-out", str(trace),
        ]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        span = json.loads(lines[-1])
        assert span["name"] == "tends.fit"

    def test_trace_flag_alone_keeps_output_clean(
        self, tmp_path, statuses_file, capsys
    ):
        assert main([
            "infer", str(statuses_file),
            "-o", str(tmp_path / "inferred.txt"), "--trace",
        ]) == 0
        assert "tau" in capsys.readouterr().out

    def test_untraced_infer_writes_no_artifacts(
        self, tmp_path, statuses_file
    ):
        assert main([
            "infer", str(statuses_file),
            "-o", str(tmp_path / "inferred.txt"),
        ]) == 0
        assert not list(tmp_path.glob("*.json"))
        assert not list(tmp_path.glob("*.prom"))


class TestPerfCheck:
    def _manifest(self, tmp_path, statuses_file, name="run.json"):
        manifest = tmp_path / name
        assert main([
            "infer", str(statuses_file),
            "-o", str(tmp_path / "inferred.txt"),
            "--manifest-out", str(manifest),
        ]) == 0
        return manifest

    def test_self_comparison_passes(self, tmp_path, statuses_file, capsys):
        manifest = self._manifest(tmp_path, statuses_file)
        code = main([
            "perf-check", str(manifest), "--baseline", str(manifest),
        ])
        assert code == 0
        assert "perf-check: PASS" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, statuses_file, capsys):
        manifest = self._manifest(tmp_path, statuses_file)
        slow = json.loads(manifest.read_text())
        slow["stages"] = {k: v * 100 + 1 for k, v in slow["stages"].items()}
        slow["total_seconds"] = sum(slow["stages"].values())
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        code = main([
            "perf-check", str(slow_path), "--baseline", str(manifest),
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_max_slowdown_flag_loosens_budget(self, tmp_path, statuses_file):
        manifest = self._manifest(tmp_path, statuses_file)
        fast = json.loads(manifest.read_text())
        fast["stages"] = {k: max(v, 0.02) for k, v in fast["stages"].items()}
        fast["total_seconds"] = sum(fast["stages"].values())
        slow = dict(fast)
        slow["stages"] = {k: v * 2 for k, v in fast["stages"].items()}
        slow["total_seconds"] = sum(slow["stages"].values())
        fast_path, slow_path = tmp_path / "fast.json", tmp_path / "slow.json"
        fast_path.write_text(json.dumps(fast))
        slow_path.write_text(json.dumps(slow))
        args = ["perf-check", str(slow_path), "--baseline", str(fast_path)]
        assert main(args) == 1
        assert main(args + ["--max-slowdown", "3.0"]) == 0

    def test_unusable_input_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "mystery"}))
        code = main([
            "perf-check", str(bogus), "--baseline", str(bogus),
        ])
        assert code == 2
        assert "cannot build a timing profile" in capsys.readouterr().err


class TestProfileCommand:
    def test_profiled_fit_emits_every_artifact(
        self, tmp_path, statuses_file, capsys
    ):
        collapsed = tmp_path / "prof.folded"
        flame = tmp_path / "prof.svg"
        manifest = tmp_path / "prof.json"
        ledger = tmp_path / "trend.jsonl"
        code = main([
            "profile", str(statuses_file),
            "--hz", "300",
            "--collapsed", str(collapsed),
            "--flamegraph", str(flame),
            "--manifest-out", str(manifest),
            "--trend-out", str(ledger),
            "-o", str(tmp_path / "inferred.txt"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "profiled fit:" in out
        assert "memory total:" in out
        assert collapsed.exists()
        svg = flame.read_text()
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert (tmp_path / "inferred.txt").exists()
        loaded = load_manifest(manifest)
        assert loaded["kind"] == "tends.fit"
        assert "memory" in loaded
        assert loaded["extra"]["profile_hz"] == 300
        entry = json.loads(ledger.read_text().splitlines()[0])
        assert entry["label"] == "profile"
        assert any(k.startswith("mem:") for k in entry["memory"])


class TestTrendWorkflow:
    def _grow_ledger(self, tmp_path, statuses_file, runs=3):
        ledger = tmp_path / "trend.jsonl"
        for _ in range(runs):
            assert main([
                "infer", str(statuses_file),
                "-o", str(tmp_path / "inferred.txt"),
                "--memory", "--trend-out", str(ledger),
            ]) == 0
        return ledger

    def test_steady_ledger_passes_trend_check(
        self, tmp_path, statuses_file, capsys
    ):
        ledger = self._grow_ledger(tmp_path, statuses_file)
        assert main(["perf-check", "--trend", str(ledger)]) == 0
        assert "perf-check: PASS" in capsys.readouterr().out

    def test_planted_regression_fails_trend_check(
        self, tmp_path, statuses_file, capsys
    ):
        ledger = self._grow_ledger(tmp_path, statuses_file)
        entries = [json.loads(l) for l in ledger.read_text().splitlines()]
        from repro.obs.trend import _with_crc

        slow = dict(entries[-1])
        slow["timings"] = {
            k: v * 100 + 1 for k, v in slow["timings"].items()
        }
        entries.append(_with_crc({k: v for k, v in slow.items() if k != "crc"}))
        ledger.write_text(
            "\n".join(json.dumps(e) for e in entries) + "\n"
        )
        assert main(["perf-check", "--trend", str(ledger)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_short_ledger_exits_2(self, tmp_path, statuses_file, capsys):
        ledger = tmp_path / "trend.jsonl"
        assert main([
            "infer", str(statuses_file),
            "-o", str(tmp_path / "inferred.txt"),
            "--trend-out", str(ledger),
        ]) == 0
        assert main(["perf-check", "--trend", str(ledger)]) == 2
        assert "at least 2 entries" in capsys.readouterr().err

    def test_trend_and_subject_are_mutually_exclusive(
        self, tmp_path, capsys
    ):
        assert main([
            "perf-check", str(tmp_path / "x.json"),
            "--trend", str(tmp_path / "t.jsonl"),
        ]) == 2
        assert main(["perf-check"]) == 2

    def test_figure_trend_renders_charts(
        self, tmp_path, statuses_file, capsys
    ):
        ledger = self._grow_ledger(tmp_path, statuses_file, runs=2)
        out_dir = tmp_path / "figs"
        assert main([
            "figure", "trend", "--ledger", str(ledger),
            "--out", str(out_dir),
        ]) == 0
        time_svg = (out_dir / "trend-time.svg").read_text()
        memory_svg = (out_dir / "trend-memory.svg").read_text()
        assert "<svg" in time_svg and "<svg" in memory_svg
        assert main(["figure", "trend"]) == 2


class TestVerbosity:
    def test_verbose_flag_enables_console_logging(self, tmp_path):
        truth = tmp_path / "truth.txt"
        assert main(["-v", "generate", "er", "--n", "10",
                     "-o", str(truth)]) == 0
        logger = get_logger()
        assert logger.level == logging.INFO
        assert any(
            isinstance(h, logging.StreamHandler) for h in logger.handlers
        )

    def test_double_verbose_means_debug(self, tmp_path):
        truth = tmp_path / "truth.txt"
        assert main(["-vv", "generate", "er", "--n", "10",
                     "-o", str(truth)]) == 0
        assert get_logger().level == logging.DEBUG

    def test_log_level_flag_wins(self, tmp_path):
        truth = tmp_path / "truth.txt"
        assert main(["--log-level", "warning", "-v", "generate", "er",
                     "--n", "10", "-o", str(truth)]) == 0
        assert get_logger().level == logging.WARNING
