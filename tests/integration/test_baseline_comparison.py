"""Cross-algorithm integration: every method runs on shared observations
and the paper's qualitative orderings hold at small scale."""

import pytest

from repro.baselines import (
    CorrelationRanker,
    Lift,
    MulTree,
    NetInf,
    NetRate,
    Observations,
    TendsInferrer,
)
from repro.evaluation.metrics import best_threshold_metrics, evaluate_edges
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.generators.random_graphs import random_tree_digraph
from repro.simulation.engine import DiffusionSimulator


@pytest.fixture(scope="module")
def lfr_setup():
    truth = lfr_benchmark_graph(LFRParams(n=120, avg_degree=4), seed=0)
    result = DiffusionSimulator(truth, mu=0.3, alpha=0.15, seed=1).run(beta=150)
    return truth, Observations.from_simulation(result)


class TestAllMethodsRun:
    def test_every_method_produces_a_graph(self, lfr_setup):
        truth, obs = lfr_setup
        methods = [
            TendsInferrer(),
            NetRate(max_iterations=30),
            MulTree(truth.n_edges),
            NetInf(truth.n_edges),
            Lift(truth.n_edges),
            CorrelationRanker(truth.n_edges),
        ]
        for method in methods:
            output = method.infer(obs)
            assert output.graph.n_nodes == truth.n_nodes, method.name

    def test_tends_beats_lift(self, lfr_setup):
        truth, obs = lfr_setup
        f_tends = evaluate_edges(truth, TendsInferrer().infer(obs).graph).f_score
        f_lift = evaluate_edges(truth, Lift(truth.n_edges).infer(obs).graph).f_score
        assert f_tends > f_lift + 0.2

    def test_multree_beats_netinf(self, lfr_setup):
        """The paper's motivation for MulTree: all-trees > best-tree."""
        truth, obs = lfr_setup
        f_multree = evaluate_edges(
            truth, MulTree(truth.n_edges).infer(obs).graph
        ).f_score
        f_netinf = evaluate_edges(
            truth, NetInf(truth.n_edges).infer(obs).graph
        ).f_score
        assert f_multree >= f_netinf

    def test_netrate_best_threshold_competitive(self, lfr_setup):
        truth, obs = lfr_setup
        output = NetRate(max_iterations=30).infer(obs)
        metrics, _ = best_threshold_metrics(truth, output.edge_scores)
        assert metrics.f_score > 0.3


class TestTreeRecovery:
    """Trees are the provably-recoverable regime for cascade methods."""

    @pytest.fixture(scope="class")
    def tree_setup(self):
        truth = random_tree_digraph(25, seed=3)
        result = DiffusionSimulator(
            truth,
            mu=0.5,
            alpha=0.08,
            seed=4,
        ).run(beta=400)
        return truth, Observations.from_simulation(result)

    def test_multree_recovers_most_of_a_tree(self, tree_setup):
        truth, obs = tree_setup
        output = MulTree(truth.n_edges).infer(obs)
        metrics = evaluate_edges(truth, output.graph)
        assert metrics.f_score > 0.7

    def test_netrate_recovers_most_of_a_tree(self, tree_setup):
        truth, obs = tree_setup
        output = NetRate().infer(obs)
        metrics, _ = best_threshold_metrics(truth, output.edge_scores)
        assert metrics.f_score > 0.7
