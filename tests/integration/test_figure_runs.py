"""End-to-end figure harness runs (reduced scale) with shape checking."""

import pytest

from repro.evaluation.archive import result_from_json, result_to_json
from repro.evaluation.figures import figure_spec
from repro.evaluation.harness import run_experiment
from repro.evaluation.shapes import check_figure_shapes


@pytest.mark.slow
class TestQuickFigureRuns:
    def test_fig3_quick_end_to_end(self):
        result = run_experiment(figure_spec("fig3", scale="quick"), seed=0)
        series = result.series("f_score")
        assert set(series) == {"TENDS", "NetRate", "MulTree", "LIFT"}
        assert all(len(values) == 5 for values in series.values())
        # Shape checks run without error; verdicts may legitimately fail
        # at reduced beta, but each must carry a detail string.
        outcomes = check_figure_shapes(result)
        assert outcomes
        assert all(outcome.detail for outcome in outcomes)

    def test_fig10_quick_runs_both_variants(self):
        result = run_experiment(figure_spec("fig10", scale="quick"), seed=0)
        series = result.series("f_score")
        assert set(series) == {"TENDS(IMI)", "TENDS(MI)"}

    def test_quick_figure_round_trips_through_archive(self):
        result = run_experiment(figure_spec("fig3", scale="quick"), seed=1)
        rebuilt = result_from_json(result_to_json(result))
        assert rebuilt.series("f_score") == result.series("f_score")
        assert [o.as_row() for o in check_figure_shapes(rebuilt)] == [
            o.as_row() for o in check_figure_shapes(result)
        ]


class TestReplicates:
    def test_figure_spec_replicates_parameter(self):
        spec = figure_spec("fig1", scale="quick", replicates=3)
        assert spec.replicates == 3
        assert figure_spec("fig1", scale="quick").replicates == 1
