"""Tracing must be a pure observer: bit-identical fits, consistent traces."""

import warnings

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.tends import Tends
from repro.simulation.statuses import StatusMatrix

status_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(2, 40), st.integers(2, 8)),
    elements=st.integers(0, 1),
).map(StatusMatrix)


def _fit(statuses, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return Tends(**kwargs).fit(statuses)


def _assert_same_inference(a, b):
    assert a.parent_sets == b.parent_sets
    assert a.threshold == b.threshold
    assert np.array_equal(a.mi_matrix, b.mi_matrix)
    assert a.graph.edge_set() == b.graph.edge_set()


@given(statuses=status_matrices)
@settings(max_examples=25, deadline=None)
def test_serial_fit_identical_with_trace_on_and_off(statuses):
    baseline = _fit(statuses, executor="serial")
    traced = _fit(statuses, executor="serial", trace=True)
    _assert_same_inference(baseline, traced)
    assert baseline.telemetry is None
    assert traced.telemetry is not None


@given(statuses=status_matrices)
@settings(max_examples=15, deadline=None)
def test_fit_identical_with_memory_attribution_on_and_off(statuses):
    baseline = _fit(statuses, executor="serial")
    measured = _fit(statuses, executor="serial", memory=True)
    _assert_same_inference(baseline, measured)
    assert baseline.telemetry is None
    stages = measured.telemetry.memory
    assert {"imi", "threshold", "search", "total"} <= set(stages)
    for stats in stages.values():
        assert stats["peak_alloc_bytes"] >= 0
        assert stats["peak_alloc_bytes"] >= max(0, stats["alloc_bytes"])


@given(statuses=status_matrices)
@settings(max_examples=10, deadline=None)
def test_fit_identical_with_trace_and_memory_together(statuses):
    baseline = _fit(statuses, executor="serial")
    both = _fit(statuses, executor="serial", trace=True, memory=True)
    _assert_same_inference(baseline, both)
    assert both.telemetry.spans
    assert both.telemetry.memory
    # The memory stats mirrored onto spans match the stage table.
    fit_span = next(
        s for s in both.telemetry.spans if s.name == "tends.fit"
    )
    assert fit_span.attrs["peak_alloc_bytes"] == (
        both.telemetry.memory["total"]["peak_alloc_bytes"]
    )


@given(statuses=status_matrices)
@settings(max_examples=15, deadline=None)
def test_threaded_traced_fit_identical_to_serial_untraced(statuses):
    baseline = _fit(statuses, executor="serial")
    traced = _fit(
        statuses, executor="thread", n_jobs=2, chunk_size=4, trace=True
    )
    _assert_same_inference(baseline, traced)


@given(statuses=status_matrices)
@settings(max_examples=15, deadline=None)
def test_trace_structure_is_well_formed(statuses):
    result = _fit(statuses, executor="serial", trace=True)
    spans = result.telemetry.spans
    by_id = {s.span_id for s in spans}
    names = {s.name for s in spans}
    assert {"tends.fit", "tends.imi", "tends.threshold", "tends.search"} <= names
    for span in spans:
        assert span.end >= span.start
        if span.parent_id is not None:
            assert span.parent_id in by_id
    roots = [s for s in spans if s.parent_id is None]
    assert [r.name for r in roots] == ["tends.fit"]
    # one search.node span per node, counters consistent with diagnostics
    node_spans = [s for s in spans if s.name == "search.node"]
    assert len(node_spans) == statuses.n_nodes
    evaluations = sum(d.n_evaluations for d in result.diagnostics)
    assert result.telemetry.counter("tends_score_evaluations_total") == (
        evaluations
    )


@given(statuses=status_matrices)
@settings(max_examples=15, deadline=None)
def test_metrics_match_pipeline_arithmetic(statuses):
    result = _fit(statuses, executor="serial", trace=True)
    n = statuses.n_nodes
    telemetry = result.telemetry
    assert telemetry.counter("tends_imi_pairs_total") == n * (n - 1) // 2
    pruned = telemetry.counter("tends_candidate_pairs_pruned_total")
    kept = telemetry.counter("tends_candidate_pairs_kept_total")
    assert pruned + kept == n * (n - 1)
    assert kept == sum(d.n_candidates for d in result.diagnostics)
