"""Property-based checks of the analysis package."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.communities import label_propagation_communities, modularity
from repro.analysis.compare import compare_topologies, per_node_metrics
from repro.graphs.digraph import DiffusionGraph


@st.composite
def graph_pairs(draw):
    n = draw(st.integers(2, 12))
    def edges():
        return draw(
            st.sets(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda e: e[0] != e[1]
                ),
                max_size=30,
            )
        )
    return DiffusionGraph(n, edges()), DiffusionGraph(n, edges())


@given(pair=graph_pairs())
@settings(max_examples=80, deadline=None)
def test_per_node_metrics_aggregate_to_global(pair):
    truth, inferred = pair
    rows = per_node_metrics(truth, inferred)
    total_tp = sum(r.metrics.true_positives for r in rows)
    total_fp = sum(r.metrics.false_positives for r in rows)
    total_fn = sum(r.metrics.false_negatives for r in rows)
    assert total_tp + total_fp == inferred.n_edges
    assert total_tp + total_fn == truth.n_edges


@given(pair=graph_pairs())
@settings(max_examples=80, deadline=None)
def test_compare_topologies_values_bounded(pair):
    truth, inferred = pair
    report = compare_topologies(truth, inferred)
    for key, value in report.items():
        if key.endswith("correlation"):
            assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9, key
        else:
            assert 0.0 <= value <= 1.0, key


@given(pair=graph_pairs())
@settings(max_examples=60, deadline=None)
def test_self_comparison_is_perfect(pair):
    truth, _ = pair
    report = compare_topologies(truth, truth)
    assert report["undirected_f_score"] in (0.0, 1.0)  # 0 only if edgeless
    assert report["exact_parent_set_fraction"] == 1.0
    assert report["hub_overlap"] == 1.0


@given(pair=graph_pairs(), seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_label_propagation_partitions_nodes(pair, seed):
    graph, _ = pair
    labels = label_propagation_communities(graph, seed=seed)
    assert labels.shape == (graph.n_nodes,)
    count = len(set(labels.tolist()))
    assert set(labels.tolist()) == set(range(count))


@given(pair=graph_pairs(), seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_modularity_bounded(pair, seed):
    graph, _ = pair
    labels = label_propagation_communities(graph, seed=seed)
    value = modularity(graph, labels)
    assert -1.0 <= value <= 1.0
