"""Property-based checks of the evaluation metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    EdgeMetrics,
    best_threshold_metrics,
    evaluate_edges,
)
from repro.graphs.digraph import DiffusionGraph

edge_sets = st.sets(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
    max_size=30,
)


@given(truth=edge_sets, predicted=edge_sets)
@settings(max_examples=150, deadline=None)
def test_confusion_counts_partition(truth, predicted):
    metrics = evaluate_edges(truth, predicted)
    assert metrics.true_positives + metrics.false_positives == len(predicted)
    assert metrics.true_positives + metrics.false_negatives == len(truth)


@given(truth=edge_sets, predicted=edge_sets)
@settings(max_examples=150, deadline=None)
def test_f_score_bounds(truth, predicted):
    metrics = evaluate_edges(truth, predicted)
    assert 0.0 <= metrics.precision <= 1.0
    assert 0.0 <= metrics.recall <= 1.0
    assert 0.0 <= metrics.f_score <= 1.0


@given(truth=edge_sets)
@settings(max_examples=100, deadline=None)
def test_self_comparison_is_perfect(truth):
    metrics = evaluate_edges(truth, truth)
    if truth:
        assert metrics.f_score == 1.0


@given(truth=edge_sets, predicted=edge_sets)
@settings(max_examples=100, deadline=None)
def test_symmetric_confusion_swap(truth, predicted):
    forward = evaluate_edges(truth, predicted)
    backward = evaluate_edges(predicted, truth)
    assert forward.true_positives == backward.true_positives
    assert forward.false_positives == backward.false_negatives


@given(truth=edge_sets, predicted=edge_sets)
@settings(max_examples=100, deadline=None)
def test_undirected_mode_is_direction_invariant(truth, predicted):
    """Reversing every predicted edge cannot change the undirected metrics."""
    reversed_predictions = {(v, u) for u, v in predicted}
    original = evaluate_edges(truth, predicted, undirected=True)
    flipped = evaluate_edges(truth, reversed_predictions, undirected=True)
    assert original.true_positives == flipped.true_positives
    assert original.f_score == flipped.f_score


@given(
    truth=edge_sets.filter(lambda s: len(s) > 0),
    scores=st.dictionaries(
        st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
            lambda e: e[0] != e[1]
        ),
        st.floats(0.0, 1.0, allow_nan=False),
        max_size=30,
    ),
)
@settings(max_examples=150, deadline=None)
def test_best_threshold_dominates_every_prefix(truth, scores):
    best, _ = best_threshold_metrics(truth, scores)
    full = evaluate_edges(truth, scores.keys())
    empty = evaluate_edges(truth, [])
    assert best.f_score >= full.f_score - 1e-12
    assert best.f_score >= empty.f_score - 1e-12
