"""Property-based checks of the held-out likelihood machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.selection import predictive_log_likelihood
from repro.simulation.statuses import StatusMatrix

status_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(4, 30), st.integers(2, 5)),
    elements=st.integers(0, 1),
).map(StatusMatrix)


def _split(statuses: StatusMatrix) -> tuple[StatusMatrix, StatusMatrix]:
    half = statuses.beta // 2
    return statuses.subset(range(half)), statuses.subset(range(half, statuses.beta))


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=60, deadline=None)
def test_predictive_ll_is_finite_and_negative(statuses, data):
    train, valid = _split(statuses)
    n = statuses.n_nodes
    parent_sets = [
        data.draw(
            st.lists(
                st.integers(0, n - 1).filter(lambda v, c=child: v != c),
                unique=True,
                max_size=3,
            )
        )
        for child in range(n)
    ]
    value = predictive_log_likelihood(train, valid, parent_sets)
    assert np.isfinite(value)
    assert value <= 0.0  # every factor is a probability < 1 after smoothing


@given(statuses=status_matrices)
@settings(max_examples=60, deadline=None)
def test_predictive_ll_bounded_by_one_bit_per_cell(statuses):
    """Laplace smoothing keeps every factor >= 1/(beta+2), so the total is
    bounded below by -beta_valid * n * log2(beta_train + 2)."""
    train, valid = _split(statuses)
    empty_sets = [[] for _ in range(statuses.n_nodes)]
    value = predictive_log_likelihood(train, valid, empty_sets)
    lower = -valid.beta * statuses.n_nodes * np.log2(train.beta + 2)
    assert value >= lower - 1e-9


@given(statuses=status_matrices)
@settings(max_examples=40, deadline=None)
def test_evaluating_on_training_data_never_prefers_empty_over_true_cpt(statuses):
    """Self-evaluation sanity: with the same split on both sides, adding a
    perfectly predictive parent cannot reduce the likelihood much."""
    # Construct a duplicated-column matrix: column 1 := column 0.
    values = statuses.values.copy()
    values[:, 1] = values[:, 0]
    coupled = StatusMatrix(values)
    train, valid = _split(coupled)
    empty = [[] for _ in range(coupled.n_nodes)]
    with_parent = [list(p) for p in empty]
    with_parent[1] = [0]
    ll_empty = predictive_log_likelihood(train, valid, empty)
    ll_parent = predictive_log_likelihood(train, valid, with_parent)
    assert ll_parent >= ll_empty - 2.0
