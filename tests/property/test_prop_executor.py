"""Property-based checks of the execution backend invariants.

Whatever the item count, worker count, or chunk size, the executor must
(1) partition the items into contiguous in-order chunks that cover every
index exactly once and (2) merge chunk results back in item order.  These
are the two facts the parallel-determinism guarantee of ``Tends.fit``
reduces to.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import ExecutionPlan, ParallelExecutor, split_chunks

n_items_st = st.integers(0, 300)
chunk_size_st = st.integers(1, 64)
n_jobs_st = st.integers(1, 8)


def _tag_chunk(tag: int, items: list[int]) -> list[tuple[int, int]]:
    """Module-level (picklable) chunk function: tag every item."""
    return [(tag, item) for item in items]


@given(n_items=n_items_st, chunk_size=chunk_size_st)
@settings(max_examples=100, deadline=None)
def test_split_chunks_partitions_in_order(n_items, chunk_size):
    chunks = split_chunks(n_items, chunk_size)
    flat = [i for chunk in chunks for i in chunk]
    assert flat == list(range(n_items))
    assert all(len(chunk) <= chunk_size for chunk in chunks)
    assert all(len(chunk) >= 1 for chunk in chunks)


@given(n_items=n_items_st, n_jobs=n_jobs_st)
@settings(max_examples=100, deadline=None)
def test_auto_chunk_size_always_partitions(n_items, n_jobs):
    plan = ExecutionPlan("thread", n_jobs=n_jobs)
    size = plan.effective_chunk_size(n_items)
    assert size >= 1
    flat = [i for chunk in split_chunks(n_items, size) for i in chunk]
    assert flat == list(range(n_items))


@given(
    n_items=n_items_st,
    n_jobs=n_jobs_st,
    chunk_size=st.one_of(st.none(), chunk_size_st),
    strategy=st.sampled_from(["serial", "thread"]),
)
@settings(max_examples=60, deadline=None)
def test_map_covers_every_item_once_in_order(n_items, n_jobs, chunk_size, strategy):
    items = list(range(n_items))
    plan = ExecutionPlan.resolve(strategy, n_jobs=n_jobs, chunk_size=chunk_size)
    results, stats = ParallelExecutor(plan).map(_tag_chunk, 7, items)
    assert [item for _, item in results] == items
    assert all(tag == 7 for tag, _ in results)
    assert sum(s.n_items for s in stats) == n_items


@given(n_items=st.integers(1, 40), chunk_size=st.one_of(st.none(), st.integers(1, 10)))
@settings(max_examples=5, deadline=None)
def test_process_map_covers_every_item_once_in_order(n_items, chunk_size):
    # The process pool is expensive to spin up, so this invariant gets a
    # handful of examples; the cheap backends above carry the breadth.
    items = list(range(n_items))
    plan = ExecutionPlan.resolve("process", n_jobs=2, chunk_size=chunk_size)
    results, stats = ParallelExecutor(plan).map(_tag_chunk, 3, items)
    assert [item for _, item in results] == items
    assert sum(s.n_items for s in stats) == n_items
