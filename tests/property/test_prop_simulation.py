"""Property-based checks of the diffusion simulator."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.simulation.engine import DiffusionSimulator


@st.composite
def simulations(draw):
    n = draw(st.integers(5, 25))
    density = draw(st.floats(0.05, 0.3))
    mu = draw(st.floats(0.1, 0.6))
    alpha = draw(st.floats(0.05, 0.4))
    seed = draw(st.integers(0, 10_000))
    graph = erdos_renyi_digraph(n, density, seed=seed)
    simulator = DiffusionSimulator(graph, mu=mu, alpha=alpha, seed=seed)
    return simulator.run(beta=draw(st.integers(1, 15)))


@given(result=simulations())
@settings(max_examples=40, deadline=None)
def test_statuses_binary(result):
    values = result.statuses.values
    assert set(np.unique(values)).issubset({0, 1})


@given(result=simulations())
@settings(max_examples=40, deadline=None)
def test_seeds_are_infected_at_time_zero(result):
    for cascade in result.cascades:
        for seed in cascade.seeds:
            assert cascade.times[seed] == 0.0


@given(result=simulations())
@settings(max_examples=40, deadline=None)
def test_every_infection_has_an_infected_graph_parent(result):
    """Non-seed infections must be explainable: some in-neighbour was
    infected in exactly the previous round."""
    graph = result.graph
    for cascade in result.cascades:
        for node, time in cascade.times.items():
            if time == 0.0:
                continue
            parents = graph.predecessors(node).tolist()
            assert any(
                cascade.times.get(parent, math.inf) == time - 1.0
                for parent in parents
            )


@given(result=simulations())
@settings(max_examples=40, deadline=None)
def test_infection_times_are_consecutive_rounds(result):
    for cascade in result.cascades:
        times = sorted(set(cascade.times.values()))
        assert times == [float(t) for t in range(len(times))]


@given(result=simulations())
@settings(max_examples=40, deadline=None)
def test_status_matrix_matches_cascades(result):
    statuses = result.statuses
    for row, cascade in enumerate(result.cascades):
        infected = set(np.nonzero(statuses.values[row])[0].tolist())
        assert infected == set(cascade.times)


@given(result=simulations())
@settings(max_examples=40, deadline=None)
def test_edge_probabilities_in_open_interval(result):
    for probability in result.probabilities.values():
        assert 0.0 < probability < 1.0
