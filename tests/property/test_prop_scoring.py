"""Property-based checks of the paper's theorems on random status data.

These are the load-bearing invariants of §IV-A:

* Lemma 1 (the merge inequality behind Theorem 1),
* Theorem 1 (likelihood is monotone in the parent set),
* the penalty term is monotone in the parent set,
* Theorem 2 (the size bound holds for any score-improving set),
* counting consistency of ``family_counts``.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.scoring import (
    delta_i,
    empty_set_score,
    family_counts,
    local_score,
    log_likelihood,
    penalty,
    size_bound,
)
from repro.simulation.statuses import StatusMatrix

status_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(2, 40), st.integers(2, 6)),
    elements=st.integers(0, 1),
).map(StatusMatrix)


def _term(b: int, a: int) -> float:
    return b * math.log2(b / a) if b > 0 else 0.0


@given(
    a1=st.integers(0, 50),
    a2=st.integers(0, 50),
    b1=st.integers(0, 50),
    b2=st.integers(0, 50),
)
def test_lemma1_merge_inequality(a1, a2, b1, b2):
    """(b/a)^b <= (b1/a1)^b1 (b2/a2)^b2 in log space, with 0log0 = 0."""
    b1 = min(b1, a1)
    b2 = min(b2, a2)
    a = a1 + a2
    b = b1 + b2
    if a == 0:
        return
    merged = _term(b, a)
    split = _term(b1, a1) + _term(b2, a2)
    assert merged <= split + 1e-9


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=60, deadline=None)
def test_theorem1_likelihood_monotone(statuses, data):
    """Adding any node to the parent set never decreases log L."""
    n = statuses.n_nodes
    child = data.draw(st.integers(0, n - 1))
    others = [v for v in range(n) if v != child]
    subset = data.draw(st.lists(st.sampled_from(others), unique=True, max_size=4))
    extra_pool = [v for v in others if v not in subset]
    if not extra_pool:
        return
    extra = data.draw(st.sampled_from(extra_pool))
    before = log_likelihood(family_counts(statuses, child, subset))
    after = log_likelihood(family_counts(statuses, child, subset + [extra]))
    assert after >= before - 1e-9


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=60, deadline=None)
def test_penalty_monotone_in_parent_set(statuses, data):
    n = statuses.n_nodes
    child = data.draw(st.integers(0, n - 1))
    others = [v for v in range(n) if v != child]
    subset = data.draw(st.lists(st.sampled_from(others), unique=True, max_size=4))
    extra_pool = [v for v in others if v not in subset]
    if not extra_pool:
        return
    extra = data.draw(st.sampled_from(extra_pool))
    before = penalty(family_counts(statuses, child, subset))
    after = penalty(family_counts(statuses, child, subset + [extra]))
    assert after >= before - 1e-9


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=60, deadline=None)
def test_theorem2_bound_holds_for_improving_sets(statuses, data):
    """Any parent set whose score beats g(v, {}) satisfies Eq. 16."""
    n = statuses.n_nodes
    child = data.draw(st.integers(0, n - 1))
    others = [v for v in range(n) if v != child]
    subset = data.draw(st.lists(st.sampled_from(others), unique=True, max_size=5))
    if not subset:
        return
    score = local_score(statuses, child, subset)
    if score < empty_set_score(statuses, child):
        return  # Theorem 2 only constrains score-improving sets
    counts = family_counts(statuses, child, subset)
    bound = size_bound(counts.phi, delta_i(statuses, child))
    assert len(subset) <= bound + 1e-9


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=60, deadline=None)
def test_family_counts_consistency(statuses, data):
    n = statuses.n_nodes
    child = data.draw(st.integers(0, n - 1))
    others = [v for v in range(n) if v != child]
    parents = data.draw(st.lists(st.sampled_from(others), unique=True, max_size=4))
    counts = family_counts(statuses, child, parents)
    assert counts.totals.sum() == statuses.beta
    assert counts.infected.sum() == int(statuses.column(child).sum())
    assert (counts.infected <= counts.totals).all()
    assert (counts.uninfected >= 0).all()
    assert counts.n_possible == 2 ** len(parents)
    assert 0 <= counts.phi < counts.n_possible or (counts.phi == 0 and not parents)


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=60, deadline=None)
def test_log_likelihood_non_positive(statuses, data):
    n = statuses.n_nodes
    child = data.draw(st.integers(0, n - 1))
    others = [v for v in range(n) if v != child]
    parents = data.draw(st.lists(st.sampled_from(others), unique=True, max_size=4))
    assert log_likelihood(family_counts(statuses, child, parents)) <= 1e-9


@given(statuses=status_matrices)
@settings(max_examples=60, deadline=None)
def test_delta_positive(statuses):
    for child in range(statuses.n_nodes):
        assert delta_i(statuses, child) > 0
