"""Property-based checks of corruption models and masked estimation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.imi import infection_mi_matrix
from repro.robustness import corrupt, missing_at_random
from repro.simulation.statuses import StatusMatrix

status_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(2, 40), st.integers(2, 7)),
    elements=st.integers(0, 1),
).map(StatusMatrix)

masked_matrices = st.builds(
    lambda statuses, rate, seed: missing_at_random(
        statuses, rate, seed=seed
    ).statuses,
    status_matrices,
    st.floats(0.0, 0.6),
    st.integers(0, 2**16),
)


@given(statuses=masked_matrices)
@settings(max_examples=60, deadline=None)
def test_masked_imi_symmetric(statuses):
    imi = infection_mi_matrix(statuses)
    assert np.allclose(imi, imi.T, atol=1e-12)


@given(statuses=masked_matrices)
@settings(max_examples=60, deadline=None)
def test_masked_imi_finite_and_bounded(statuses):
    imi = infection_mi_matrix(statuses)
    assert np.isfinite(imi).all()
    assert imi.max() <= 1.0 + 1e-9
    assert imi.min() >= -1.0 - 1e-9


@given(statuses=masked_matrices, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_masked_imi_invariant_under_cascade_permutation(statuses, seed):
    # The IMI is a function of the (status, mask) multiset of rows, so
    # shuffling the processes must not change it.
    order = np.random.default_rng(seed).permutation(statuses.beta)
    shuffled = statuses.subset(order)
    np.testing.assert_allclose(
        infection_mi_matrix(shuffled), infection_mi_matrix(statuses), atol=1e-12
    )


@given(statuses=status_matrices)
@settings(max_examples=60, deadline=None)
def test_all_observed_mask_equals_clean_path(statuses):
    # missing="pairwise" with nothing actually missing must be the clean
    # path — an all-True mask is normalised away entirely.
    mask = np.ones(statuses.values.shape, dtype=bool)
    masked = StatusMatrix(statuses.values, mask)
    assert masked.mask is None
    np.testing.assert_array_equal(
        infection_mi_matrix(masked), infection_mi_matrix(statuses)
    )


@given(
    statuses=status_matrices,
    kind=st.sampled_from(["flip", "missing", "dropout", "subsample"]),
    rate=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_corruption_deterministic_and_well_formed(statuses, kind, rate, seed):
    first = corrupt(statuses, kind, rate, seed=seed)
    second = corrupt(statuses, kind, rate, seed=seed)
    assert first == second
    # Output is always a valid status matrix with >= 1 process.
    assert first.statuses.beta >= 1
    assert first.statuses.n_nodes == statuses.n_nodes
    assert set(np.unique(first.statuses.values)) <= {0, 1}


@given(
    statuses=status_matrices,
    rate=st.floats(0.0, 0.9),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_missingness_never_alters_observed_entries(statuses, rate, seed):
    record = missing_at_random(statuses, rate, seed=seed)
    mask = record.mask
    if mask is None:  # nothing went missing
        assert record.statuses == statuses
    else:
        assert (
            record.statuses.values[mask] == statuses.values[mask]
        ).all()
        assert (record.statuses.values[~mask] == 0).all()
