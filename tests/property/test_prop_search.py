"""Property-based checks of the parent-set search."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import TendsConfig
from repro.core.scoring import empty_set_score, local_score
from repro.core.search import MAX_PARENT_SET_SIZE, ParentSearch
from repro.simulation.statuses import StatusMatrix

status_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(4, 30), st.integers(3, 7)),
    elements=st.integers(0, 1),
).map(StatusMatrix)


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=50, deadline=None)
def test_greedy_result_never_scores_below_empty_set(statuses, data):
    """Accepted parent sets must (weakly) beat the empty set — Eq. 19."""
    node = data.draw(st.integers(0, statuses.n_nodes - 1))
    candidates = [v for v in range(statuses.n_nodes) if v != node]
    search = ParentSearch(statuses, TendsConfig())
    parents, diag = search.find_parents(node, candidates)
    assert diag.final_score >= empty_set_score(statuses, node) - 1e-9


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=50, deadline=None)
def test_parents_drawn_from_candidates(statuses, data):
    node = data.draw(st.integers(0, statuses.n_nodes - 1))
    pool = data.draw(
        st.lists(
            st.integers(0, statuses.n_nodes - 1).filter(lambda v: v != node),
            unique=True,
            max_size=statuses.n_nodes,
        )
    )
    for strategy in ("greedy-rescoring", "ranked-union"):
        search = ParentSearch(statuses, TendsConfig(search_strategy=strategy))
        parents, _ = search.find_parents(node, pool)
        assert set(parents) <= set(pool)
        assert node not in parents
        assert len(parents) <= MAX_PARENT_SET_SIZE


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=50, deadline=None)
def test_final_score_matches_reported_parents(statuses, data):
    node = data.draw(st.integers(0, statuses.n_nodes - 1))
    candidates = [v for v in range(statuses.n_nodes) if v != node]
    search = ParentSearch(statuses, TendsConfig())
    parents, diag = search.find_parents(node, candidates)
    assert diag.final_score == local_score(statuses, node, parents)


@given(statuses=status_matrices, data=st.data())
@settings(max_examples=30, deadline=None)
def test_search_is_deterministic(statuses, data):
    node = data.draw(st.integers(0, statuses.n_nodes - 1))
    candidates = [v for v in range(statuses.n_nodes) if v != node]
    search = ParentSearch(statuses, TendsConfig())
    first, _ = search.find_parents(node, candidates)
    second, _ = search.find_parents(node, candidates)
    assert first == second
