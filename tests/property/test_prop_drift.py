"""Property suite for windowed statistics and the drift detector.

Two algebraic guarantees and one behavioural one, over
Hypothesis-generated streams (with and without observation masks):

* a ``decay=1.0`` :class:`WindowedStats` ring — any window size, any
  batch split — aggregates to **bit-identical** counts to chaining
  :meth:`SufficientStats.updated` over the same batches (the cumulative
  path the rest of the estimator uses);
* ``recent(k) + reference(k) == total`` exactly, for every legal ``k``
  (integer count algebra, no float drift);
* :func:`detect_drift` is deterministic and symmetric-safe: the same
  two windows always produce the same report, and comparing a window
  against itself never flags.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.drift import DriftConfig, detect_drift
from repro.core.stats import SufficientStats, WindowedStats
from repro.simulation.statuses import StatusMatrix


@st.composite
def batched_streams(draw, with_mask: bool):
    """``(batches, n)``: a short stream cut into 1-4 batches."""
    n = draw(st.integers(2, 6))
    n_batches = draw(st.integers(1, 4))
    batches = []
    for _ in range(n_batches):
        beta = draw(st.integers(0, 10))
        data = draw(
            arrays(dtype=np.uint8, shape=(beta, n), elements=st.integers(0, 1))
        )
        mask = None
        if with_mask and beta:
            mask = draw(
                arrays(dtype=np.bool_, shape=(beta, n), elements=st.booleans())
            )
        batches.append(StatusMatrix(data, mask))
    return batches, n


@given(batched_streams(with_mask=False), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_windowed_total_equals_updated_chain(stream, window_cascades):
    batches, n = stream
    ring = WindowedStats.empty(n, window_cascades=window_cascades)
    chain = SufficientStats.zeros(n)
    for batch in batches:
        ring = ring.pushed(batch)
        chain = chain.updated(batch)
    assert ring.total().equals(chain)
    assert ring.total().checksum() == chain.checksum()


@given(batched_streams(with_mask=True))
@settings(max_examples=40, deadline=None)
def test_windowed_total_equals_updated_chain_masked(stream):
    batches, n = stream
    # Single unbounded window: the ring degenerates to the plain chain.
    ring = WindowedStats.empty(n)
    chain = SufficientStats.zeros(n)
    for batch in batches:
        ring = ring.pushed(batch)
        chain = chain.updated(batch)
    assert ring.total().equals(chain)


@given(batched_streams(with_mask=True), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_recent_plus_reference_reassembles_total(stream, window_cascades):
    batches, n = stream
    ring = WindowedStats.empty(n, window_cascades=window_cascades)
    for batch in batches:
        ring = ring.pushed(batch)
    for k in range(1, ring.n_windows):
        recent = ring.recent(k)
        reference = ring.reference(k)
        assert recent.merged(reference).equals(ring.total())
        assert recent.beta + reference.beta == ring.beta


@given(
    arrays(dtype=np.uint8, shape=(60, 5), elements=st.integers(0, 1)),
    arrays(dtype=np.uint8, shape=(40, 5), elements=st.integers(0, 1)),
)
@settings(max_examples=30, deadline=None)
def test_detect_drift_deterministic(first, second):
    ref = SufficientStats.from_statuses(StatusMatrix(first))
    rec = SufficientStats.from_statuses(StatusMatrix(second))
    config = DriftConfig(min_window_beta=10, min_pair_obs=5)
    once = detect_drift(ref, rec, config)
    twice = detect_drift(ref, rec, config)
    assert once == twice


@given(arrays(dtype=np.uint8, shape=(80, 5), elements=st.integers(0, 1)))
@settings(max_examples=30, deadline=None)
def test_window_vs_itself_never_flags(data):
    stats = SufficientStats.from_statuses(StatusMatrix(data))
    report = detect_drift(
        stats, stats, DriftConfig(correction="none", min_window_beta=10)
    )
    assert not report.drifted
