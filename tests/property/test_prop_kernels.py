"""Differential battery: packed kernels vs the numpy estimators.

The headline guarantee of :mod:`repro.core.kernels`: everywhere the
packed backend is reachable — joint counts, masked pairwise-complete
counts, IMI/MI matrices, parent-set contingency tables, and whole
``fit`` / ``partial_fit`` pipelines — it is **bit-identical** to the
numpy path.  Hypothesis generates the statuses and masks (including the
degenerate corners: all-zero, all-one, single-cascade, β not divisible
by 64, and mask-density extremes); the golden fixtures pin the
end-to-end equality on committed data.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.imi import infection_mi_matrix, traditional_mi_matrix
from repro.core.kernels import (
    PackedStatuses,
    packed_family_counts,
    packed_infection_counts,
    packed_joint_counts,
    packed_observed_counts,
    packed_pairwise_complete_counts,
)
from repro.core.scoring import family_counts, local_score
from repro.core.stats import COUNT_KEYS, SufficientStats
from repro.core.tends import Tends
from repro.simulation import io as sim_io
from repro.simulation.statuses import StatusMatrix

DATA_DIR = Path(__file__).resolve().parent.parent / "data"


@st.composite
def status_matrices(draw):
    """A status matrix with an optional observation mask.

    β runs past one 64-bit word (tail-word coverage), densities span the
    extremes (all-zero / all-one statuses, all-observed / never-observed
    masks).
    """
    beta = draw(st.integers(1, 150))
    n = draw(st.integers(1, 8))
    density = draw(st.sampled_from([0.0, 0.1, 0.5, 0.9, 1.0]))
    data = draw(
        arrays(
            dtype=np.uint8,
            shape=(beta, n),
            elements=st.floats(0, 1).map(lambda p: np.uint8(p < density)),
        )
    )
    mask = None
    if draw(st.booleans()):
        mask_density = draw(st.sampled_from([0.0, 0.2, 0.8, 1.0]))
        mask = draw(
            arrays(
                dtype=np.bool_,
                shape=(beta, n),
                elements=st.floats(0, 1).map(lambda p: bool(p < mask_density)),
            )
        )
    return StatusMatrix(data, mask)


def _assert_counts_equal(reference: dict, got: dict, keys) -> None:
    for key in keys:
        assert got[key].dtype == reference[key].dtype
        assert np.array_equal(reference[key], got[key]), key


@given(statuses=status_matrices())
@settings(max_examples=60, deadline=None)
def test_joint_and_marginal_counts_bit_equal(statuses):
    packed = PackedStatuses.from_statuses(statuses)
    if not statuses.has_missing:
        _assert_counts_equal(
            statuses.joint_counts(),
            packed_joint_counts(packed),
            ("11", "10", "01", "00"),
        )
    assert np.array_equal(
        statuses.infection_counts(), packed_infection_counts(packed)
    )
    assert np.array_equal(
        statuses.observed_counts(), packed_observed_counts(packed)
    )


@given(statuses=status_matrices())
@settings(max_examples=60, deadline=None)
def test_pairwise_complete_counts_bit_equal(statuses):
    packed = PackedStatuses.from_statuses(statuses)
    _assert_counts_equal(
        statuses.pairwise_complete_counts(),
        packed_pairwise_complete_counts(packed),
        COUNT_KEYS,
    )


@given(statuses=status_matrices())
@settings(max_examples=40, deadline=None)
def test_mi_matrices_bit_equal(statuses):
    assert np.array_equal(
        infection_mi_matrix(statuses),
        infection_mi_matrix(statuses, kernel="packed"),
    )
    assert np.array_equal(
        traditional_mi_matrix(statuses),
        traditional_mi_matrix(statuses, kernel="packed"),
    )


@given(statuses=status_matrices(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_family_counts_and_scores_bit_equal(statuses, data):
    n = statuses.n_nodes
    child = data.draw(st.integers(0, n - 1))
    others = [node for node in range(n) if node != child]
    parents = data.draw(
        st.lists(st.sampled_from(others), unique=True, max_size=len(others))
        if others
        else st.just([])
    )
    packed = PackedStatuses.from_statuses(statuses)
    reference = family_counts(statuses, child, parents)
    totals, infected, beta = packed_family_counts(packed, child, parents)
    assert np.array_equal(reference.totals, totals)
    assert np.array_equal(reference.infected, infected)
    assert reference.beta == beta
    # The float score runs the same summation order over the same counts.
    assert local_score(statuses, child, parents) == local_score(
        statuses, child, parents, packed=packed
    )


@given(statuses=status_matrices())
@settings(max_examples=40, deadline=None)
def test_sufficient_stats_bit_equal(statuses):
    reference = SufficientStats.from_statuses(statuses)
    packed = SufficientStats.from_statuses(statuses, kernel="packed")
    assert reference.equals(packed)
    assert reference.checksum() == packed.checksum()


# ----------------------------------------------------------------------
# deterministic corner matrices (the named cases from the issue, pinned
# outside hypothesis so they always run)
# ----------------------------------------------------------------------

def _corner_matrices():
    rng = np.random.default_rng(23)
    yield StatusMatrix(np.zeros((65, 5), dtype=np.uint8))  # all-zero, β=65
    yield StatusMatrix(np.ones((64, 4), dtype=np.uint8))  # all-one, β=64
    single = np.zeros((1, 6), dtype=np.uint8)  # single cascade
    single[0, ::2] = 1
    yield StatusMatrix(single)
    data = (rng.random((130, 6)) < 0.4).astype(np.uint8)  # β % 64 != 0
    yield StatusMatrix(data)
    yield StatusMatrix(data, np.zeros((130, 6), dtype=np.bool_))  # nothing observed
    checker = np.indices((67, 6)).sum(axis=0) % 2 == 0  # checkerboard mask
    yield StatusMatrix(data[:67], checker)


@pytest.mark.parametrize("index", range(6))
def test_corner_matrices_bit_equal(index):
    statuses = list(_corner_matrices())[index]
    packed = PackedStatuses.from_statuses(statuses)
    _assert_counts_equal(
        statuses.pairwise_complete_counts(),
        packed_pairwise_complete_counts(packed),
        COUNT_KEYS,
    )
    assert np.array_equal(
        infection_mi_matrix(statuses),
        infection_mi_matrix(statuses, kernel="packed"),
    )
    for child in range(min(statuses.n_nodes, 3)):
        parents = [p for p in range(statuses.n_nodes) if p != child][:3]
        reference = family_counts(statuses, child, parents)
        totals, infected, beta = packed_family_counts(packed, child, parents)
        assert np.array_equal(reference.totals, totals)
        assert np.array_equal(reference.infected, infected)
        assert reference.beta == beta


# ----------------------------------------------------------------------
# end-to-end: golden fixtures under both backends
# ----------------------------------------------------------------------

def _assert_results_identical(reference, result):
    assert result.graph.edge_set() == reference.graph.edge_set()
    assert result.parent_sets == reference.parent_sets
    assert result.threshold == reference.threshold
    assert np.array_equal(result.mi_matrix, reference.mi_matrix)
    assert [d.final_score for d in result.diagnostics] == [
        d.final_score for d in reference.diagnostics
    ]


def test_golden_fit_identical_under_packed_kernel():
    statuses = sim_io.read_statuses_csv(DATA_DIR / "golden_statuses.csv")
    reference = Tends().fit(statuses)
    packed = Tends(kernel="packed").fit(statuses)
    _assert_results_identical(reference, packed)
    assert reference.kernel == "numpy"
    assert packed.kernel == "packed"


def _replay_updates(statuses, spec, **overrides):
    # Mirrors tests/unit/test_golden_regression.py: fit the initial
    # prefix, absorb the frozen batch schedule, collect the cached-count
    # checksums after every step.
    bounds = [0, spec["initial_beta"]]
    for width in spec["batch_betas"]:
        bounds.append(bounds[-1] + width)
    assert bounds[-1] == statuses.beta
    estimator = Tends(**overrides)
    result = estimator.fit(statuses.subset(range(0, bounds[1])))
    checksums = [estimator.model.stats.checksum()]
    for start, stop in zip(bounds[1:], bounds[2:]):
        result = estimator.partial_fit(statuses.subset(range(start, stop)))
        checksums.append(estimator.model.stats.checksum())
    return result, checksums


def test_golden_incremental_replay_identical_under_packed_kernel():
    statuses = sim_io.read_statuses_csv(
        DATA_DIR / "golden_incremental_statuses.csv"
    )
    spec = json.loads((DATA_DIR / "golden_incremental.json").read_text())
    result, checksums = _replay_updates(statuses, spec, kernel="packed")
    # The frozen checksums were produced by the numpy path; matching them
    # means every packed batch count was integer-exact, bit for bit.
    assert checksums == spec["stats_checksums"]
    assert result.graph.edge_set() == {(p, c) for p, c in spec["edges"]}
    assert result.threshold == pytest.approx(spec["threshold"], rel=1e-12, abs=0.0)
    assert result.kernel == "packed"


def test_masked_fit_identical_under_packed_kernel():
    rng = np.random.default_rng(29)
    data = (rng.random((120, 25)) < 0.35).astype(np.uint8)
    mask = rng.random((120, 25)) < 0.85
    statuses = StatusMatrix(data, mask)
    reference = Tends().fit(statuses)
    packed = Tends(kernel="packed").fit(statuses)
    _assert_results_identical(reference, packed)
