"""Property-based checks of the infection-MI machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.imi import infection_mi_matrix, pointwise_mi_terms, traditional_mi_matrix
from repro.simulation.statuses import StatusMatrix

status_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(2, 50), st.integers(2, 8)),
    elements=st.integers(0, 1),
).map(StatusMatrix)


@given(statuses=status_matrices)
@settings(max_examples=80, deadline=None)
def test_imi_symmetric(statuses):
    imi = infection_mi_matrix(statuses)
    assert np.allclose(imi, imi.T, atol=1e-12)


@given(statuses=status_matrices)
@settings(max_examples=80, deadline=None)
def test_imi_diagonal_zero(statuses):
    assert np.allclose(np.diag(infection_mi_matrix(statuses)), 0.0)


@given(statuses=status_matrices)
@settings(max_examples=80, deadline=None)
def test_imi_bounded_by_one_bit(statuses):
    imi = infection_mi_matrix(statuses)
    assert imi.max() <= 1.0 + 1e-9
    assert imi.min() >= -1.0 - 1e-9


@given(statuses=status_matrices)
@settings(max_examples=80, deadline=None)
def test_traditional_mi_non_negative_and_bounded(statuses):
    mi = traditional_mi_matrix(statuses)
    assert mi.min() >= 0.0
    assert mi.max() <= 1.0 + 1e-9


@given(statuses=status_matrices)
@settings(max_examples=80, deadline=None)
def test_pointwise_terms_sum_to_traditional_mi(statuses):
    terms = pointwise_mi_terms(statuses)
    total = terms["11"] + terms["10"] + terms["01"] + terms["00"]
    np.fill_diagonal(total, 0.0)
    expected = traditional_mi_matrix(statuses)
    assert np.allclose(np.maximum(total, 0.0), expected, atol=1e-9)


@given(statuses=status_matrices)
@settings(max_examples=80, deadline=None)
def test_imi_never_exceeds_traditional_mi(statuses):
    # IMI subtracts |cross terms| where MI adds them, so IMI <= MI pairwise.
    imi = infection_mi_matrix(statuses)
    mi = traditional_mi_matrix(statuses)
    assert (imi <= mi + 1e-9).all()


@given(statuses=status_matrices)
@settings(max_examples=50, deadline=None)
def test_imi_invariant_to_row_order(statuses):
    rng = np.random.default_rng(0)
    permutation = rng.permutation(statuses.beta)
    shuffled = StatusMatrix(statuses.values[permutation])
    assert np.allclose(
        infection_mi_matrix(statuses), infection_mi_matrix(shuffled), atol=1e-12
    )
