"""Property-based checks of the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiffusionGraph
from repro.graphs.io import graph_from_json, graph_to_json
from repro.graphs.metrics import reciprocity, summarize_graph


@st.composite
def graphs(draw):
    n = draw(st.integers(1, 20))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=60,
        )
    )
    graph = DiffusionGraph(n)
    for u, v in pairs:
        if u != v:
            graph.add_edge(u, v)
    return graph


@given(graph=graphs())
@settings(max_examples=100, deadline=None)
def test_degree_sums_equal_edge_count(graph):
    assert graph.in_degrees().sum() == graph.n_edges
    assert graph.out_degrees().sum() == graph.n_edges


@given(graph=graphs())
@settings(max_examples=100, deadline=None)
def test_adjacency_matrix_consistent(graph):
    matrix = graph.adjacency_matrix()
    assert matrix.sum() == graph.n_edges
    assert not matrix.diagonal().any()
    back = DiffusionGraph.from_adjacency_matrix(matrix)
    assert back.edge_set() == graph.edge_set()


@given(graph=graphs())
@settings(max_examples=100, deadline=None)
def test_reverse_is_involution(graph):
    assert graph.reverse().reverse().edge_set() == graph.edge_set()


@given(graph=graphs())
@settings(max_examples=100, deadline=None)
def test_reverse_preserves_reciprocity(graph):
    assert reciprocity(graph.reverse()) == reciprocity(graph)


@given(graph=graphs())
@settings(max_examples=100, deadline=None)
def test_json_round_trip(graph):
    document = graph_to_json(graph)
    back = graph_from_json(document)
    assert back.n_nodes == graph.n_nodes
    assert back.edge_set() == graph.edge_set()


@given(graph=graphs())
@settings(max_examples=100, deadline=None)
def test_successor_predecessor_duality(graph):
    for node in graph.nodes():
        for successor in graph.successors(node).tolist():
            assert node in graph.predecessors(successor).tolist()


@given(graph=graphs())
@settings(max_examples=100, deadline=None)
def test_summary_internally_consistent(graph):
    summary = summarize_graph(graph)
    assert summary.n_edges == graph.n_edges
    assert 0.0 <= summary.reciprocity <= 1.0
    assert 0.0 <= summary.density <= 1.0
    if graph.n_nodes:
        assert summary.avg_degree == graph.n_edges / graph.n_nodes
