"""Property-based checks of the full TENDS pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.tends import Tends
from repro.simulation.statuses import StatusMatrix

status_matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(2, 40), st.integers(2, 8)),
    elements=st.integers(0, 1),
).map(StatusMatrix)


@given(statuses=status_matrices)
@settings(max_examples=40, deadline=None)
def test_fit_never_crashes_and_output_is_consistent(statuses):
    result = Tends().fit(statuses)
    assert result.graph.n_nodes == statuses.n_nodes
    assert len(result.parent_sets) == statuses.n_nodes
    # parent sets and graph edges agree exactly
    edges = {
        (parent, child)
        for child, parents in enumerate(result.parent_sets)
        for parent in parents
    }
    assert edges == set(result.graph.edge_set())


@given(statuses=status_matrices)
@settings(max_examples=40, deadline=None)
def test_no_self_loops_ever(statuses):
    result = Tends().fit(statuses)
    assert all(u != v for u, v in result.graph.edges())


@given(statuses=status_matrices)
@settings(max_examples=40, deadline=None)
def test_threshold_non_negative_and_candidates_respect_it(statuses):
    result = Tends().fit(statuses)
    assert result.threshold >= 0.0
    for diag in result.diagnostics:
        row = result.mi_matrix[diag.node]
        expected = int(np.sum(row > result.threshold)) - (
            1 if row[diag.node] > result.threshold else 0
        )
        assert diag.n_candidates == expected


@given(statuses=status_matrices)
@settings(max_examples=30, deadline=None)
def test_column_permutation_equivariance_of_pruning(statuses):
    """Relabelling nodes permutes the pruning stage exactly.

    (The full edge set is equivariant only up to greedy tie-breaking —
    equal-score candidates are taken in node-id order — so the property
    tested here is the deterministic part of the pipeline: the threshold
    and every node's candidate set.)
    """
    n = statuses.n_nodes
    permutation = np.roll(np.arange(n), 1)
    permuted = StatusMatrix(statuses.values[:, permutation])
    base = Tends().fit(statuses)
    shifted = Tends().fit(permuted)
    assert shifted.threshold == base.threshold
    # column j of `permuted` is column permutation[j] of `statuses`:
    # node j in the permuted fit corresponds to node permutation[j].
    inverse = np.empty(n, dtype=np.int64)
    inverse[permutation] = np.arange(n)
    base_candidates = {d.node: d.n_candidates for d in base.diagnostics}
    for diag in shifted.diagnostics:
        assert diag.n_candidates == base_candidates[int(permutation[diag.node])]
