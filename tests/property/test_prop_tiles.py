"""Property suite for the tiled sufficient-statistics layer.

The tiled path is a pure re-blocking of the dense one: every count
tile is an integer popcount/matmul over a slice of the same statuses,
and the MI pipeline is elementwise per tile.  So for **any** history —
tile sizes that do not divide ``n``, all-zero rows, a single cascade,
masked pairs — the tiled joint counts, pairwise-complete counts, IMI
matrix, and checksum must be bit-identical to the dense ones, and a
sharded fit reassembled with :func:`merge_results` must reproduce the
full-fit fingerprint exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.stats import COUNT_KEYS, SufficientStats
from repro.core.tends import Tends, merge_results
from repro.core.tiles import TiledSufficientStats, tiled_batch_counts
from repro.simulation.statuses import StatusMatrix


@st.composite
def histories(draw, with_mask: bool, min_beta: int = 1):
    """A status history plus a tile size chosen independently of ``n``
    (so ragged edge blocks — ``n % tile_size != 0`` — are common)."""
    beta = draw(st.integers(min_beta, 20))
    n = draw(st.integers(2, 9))
    data = draw(
        arrays(dtype=np.uint8, shape=(beta, n), elements=st.integers(0, 1))
    )
    mask = None
    if with_mask:
        mask = draw(
            arrays(dtype=np.bool_, shape=(beta, n), elements=st.booleans())
        )
    tile_size = draw(st.integers(1, n + 2))
    return StatusMatrix(data, mask), tile_size


@st.composite
def sharded_histories(draw):
    """A history plus a partition of its nodes into 1–3 shards."""
    statuses, tile_size = draw(histories(with_mask=False, min_beta=3))
    n = statuses.n_nodes
    n_shards = draw(st.integers(1, min(3, n)))
    owners = draw(
        st.lists(
            st.integers(0, n_shards - 1), min_size=n, max_size=n
        )
    )
    shards = [
        [node for node, owner in enumerate(owners) if owner == shard]
        for shard in range(n_shards)
    ]
    shards = [shard for shard in shards if shard]
    return statuses, tile_size, shards


def _assert_counts_identical(statuses, tile_size, kernel):
    dense = SufficientStats.from_statuses(statuses, kernel=kernel)
    tiled = tiled_batch_counts(statuses, tile_size=tile_size, kernel=kernel)
    for key in COUNT_KEYS:
        assert np.array_equal(tiled[key], dense.counts[key]), key


@given(history=histories(with_mask=False))
@settings(max_examples=60, deadline=None)
def test_counts_identical_unmasked(history):
    statuses, tile_size = history
    _assert_counts_identical(statuses, tile_size, "numpy")
    _assert_counts_identical(statuses, tile_size, "packed")


@given(history=histories(with_mask=True))
@settings(max_examples=60, deadline=None)
def test_counts_identical_masked(history):
    statuses, tile_size = history
    _assert_counts_identical(statuses, tile_size, "numpy")
    _assert_counts_identical(statuses, tile_size, "packed")


@given(beta=st.integers(1, 20), n=st.integers(2, 9), tile_size=st.integers(1, 11))
@settings(max_examples=30, deadline=None)
def test_all_zero_history_counts(beta, n, tile_size):
    """Nothing ever infected: n00 == obs == beta everywhere, the rest 0."""
    statuses = StatusMatrix(np.zeros((beta, n), dtype=np.uint8))
    _assert_counts_identical(statuses, tile_size, "numpy")
    _assert_counts_identical(statuses, tile_size, "packed")
    tiled = tiled_batch_counts(statuses, tile_size=tile_size)
    assert np.all(tiled["00"] == beta)
    assert np.all(tiled["11"] == 0)


@given(history=histories(with_mask=False, min_beta=1))
@settings(max_examples=30, deadline=None)
def test_single_cascade_counts(history):
    """One process is the smallest legal counting input (fit needs two,
    counting does not): still bit-identical."""
    statuses, tile_size = history
    single = statuses.subset(range(1))
    _assert_counts_identical(single, tile_size, "numpy")
    _assert_counts_identical(single, tile_size, "packed")


@given(history=histories(with_mask=True, min_beta=2))
@settings(max_examples=25, deadline=None)
def test_stats_mi_and_checksum_identical(history, tmp_path_factory):
    statuses, tile_size = history
    spill = tmp_path_factory.mktemp("spill")
    dense = SufficientStats.from_statuses(statuses)
    tiled = TiledSufficientStats.from_statuses(
        statuses, tile_size=tile_size, spill_dir=spill
    )
    for kind in ("infection", "traditional"):
        assert np.array_equal(
            np.asarray(tiled.mi_matrix(kind)), dense.mi_matrix(kind)
        ), kind
    assert tiled.checksum() == dense.checksum()
    for key in COUNT_KEYS:
        assert np.array_equal(tiled.count_matrix(key), dense.counts[key]), key


@given(history=histories(with_mask=False, min_beta=4))
@settings(max_examples=20, deadline=None)
def test_tiled_update_equals_dense_update(history, tmp_path_factory):
    """Copy-on-write generation roll: counting a prefix then absorbing
    the rest tiled matches dense one-shot counting bit for bit."""
    statuses, tile_size = history
    spill = tmp_path_factory.mktemp("spill")
    cut = statuses.beta // 2
    tiled = TiledSufficientStats.from_statuses(
        statuses.subset(range(cut)), tile_size=tile_size, spill_dir=spill
    ).updated(statuses.subset(range(cut, statuses.beta)))
    assert tiled.checksum() == SufficientStats.from_statuses(statuses).checksum()


@given(history=histories(with_mask=True, min_beta=2))
@settings(max_examples=15, deadline=None)
def test_tiled_fit_fingerprint_identical(history, tmp_path_factory):
    statuses, tile_size = history
    spill = tmp_path_factory.mktemp("spill")
    dense = Tends(audit="ignore").fit(statuses)
    tiled = Tends(
        audit="ignore", tile_size=tile_size, spill_dir=str(spill)
    ).fit(statuses)
    assert tiled.fingerprint() == dense.fingerprint()
    assert tiled.parent_sets == dense.parent_sets


@given(sharded=sharded_histories())
@settings(max_examples=20, deadline=None)
def test_shard_fit_merge_round_trips_fingerprint(sharded):
    statuses, _, shards = sharded
    full = Tends(audit="ignore").fit(statuses)
    results = [
        Tends(audit="ignore").fit(statuses, nodes=shard) for shard in shards
    ]
    merged = merge_results(results)
    assert merged.fingerprint() == full.fingerprint()
    assert merged.parent_sets == full.parent_sets
    assert np.array_equal(
        np.asarray(merged.mi_matrix), np.asarray(full.mi_matrix)
    )
    assert merged.threshold == full.threshold
