"""Batch-equivalence property suite for the incremental engine.

The central guarantee of :meth:`Tends.partial_fit` (docs/INCREMENTAL.md):
fitting a prefix and absorbing the rest in arbitrary batches is
**bit-identical** to one-shot fitting the concatenated history — same
edges, same IMI matrix (bit for bit), same τ, same per-node scores.
Hypothesis generates the histories (with and without observation masks)
and the batch splits; empty batches are legal splits and are generated
too.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.tends import Tends
from repro.simulation.statuses import StatusMatrix


@st.composite
def split_histories(draw, with_mask: bool):
    """A full history plus a batch split of it.

    Returns ``(full, batches)`` where ``batches`` concatenate to ``full``;
    the first batch always has >= 2 processes (the ``fit`` minimum), later
    batches may be empty (duplicate cut points).
    """
    beta = draw(st.integers(3, 24))
    n = draw(st.integers(2, 7))
    data = draw(
        arrays(dtype=np.uint8, shape=(beta, n), elements=st.integers(0, 1))
    )
    mask = None
    if with_mask:
        mask = draw(
            arrays(dtype=np.bool_, shape=(beta, n), elements=st.booleans())
        )
    full = StatusMatrix(data, mask)
    n_cuts = draw(st.integers(1, 3))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(2, beta), min_size=n_cuts, max_size=n_cuts
            )
        )
    )
    bounds = [0] + cuts + [beta]
    batches = [
        full.subset(range(start, stop))
        for start, stop in zip(bounds, bounds[1:])
    ]
    return full, batches


def _assert_bit_identical(result, full):
    assert result.parent_sets == full.parent_sets
    assert np.array_equal(result.mi_matrix, full.mi_matrix)
    assert result.threshold == full.threshold
    assert [d.final_score for d in result.diagnostics] == [
        d.final_score for d in full.diagnostics
    ]
    assert [d.empty_score for d in result.diagnostics] == [
        d.empty_score for d in full.diagnostics
    ]
    assert set(result.graph.edge_set()) == set(full.graph.edge_set())


def _run_incremental(batches, **config):
    estimator = Tends(audit="ignore", **config)
    result = estimator.fit(batches[0])
    for batch in batches[1:]:
        result = estimator.partial_fit(batch)
    return estimator, result


@given(history=split_histories(with_mask=False))
@settings(max_examples=40, deadline=None)
def test_partial_fit_equals_fit_unmasked(history):
    full_statuses, batches = history
    full = Tends(audit="ignore").fit(full_statuses)
    estimator, result = _run_incremental(batches)
    _assert_bit_identical(result, full)
    # The installed model mirrors the result exactly.
    assert estimator.model.parent_sets == full.parent_sets
    assert estimator.model.beta == full_statuses.beta
    assert estimator.model.statuses == full_statuses


@given(history=split_histories(with_mask=True))
@settings(max_examples=40, deadline=None)
def test_partial_fit_equals_fit_masked(history):
    full_statuses, batches = history
    full = Tends(audit="ignore").fit(full_statuses)
    _, result = _run_incremental(batches)
    _assert_bit_identical(result, full)


@given(history=split_histories(with_mask=False))
@settings(max_examples=25, deadline=None)
def test_any_two_way_split_point_is_equivalent(history):
    """The split position never matters, only the concatenation."""
    full_statuses, _ = history
    full = Tends(audit="ignore").fit(full_statuses)
    for cut in range(2, full_statuses.beta + 1):
        batches = [
            full_statuses.subset(range(0, cut)),
            full_statuses.subset(range(cut, full_statuses.beta)),
        ]
        _, result = _run_incremental(batches)
        _assert_bit_identical(result, full)


@given(
    history=split_histories(with_mask=True),
    executor=st.sampled_from(["serial", "thread", "process"]),
)
@settings(max_examples=5, deadline=None)
def test_equivalence_on_every_executor_backend(history, executor):
    """Dirty-node searches routed through any backend stay bit-identical
    to the serial one-shot fit (masked histories, the harder path)."""
    full_statuses, batches = history
    full = Tends(audit="ignore").fit(full_statuses)
    _, result = _run_incremental(
        batches, executor=executor, n_jobs=2, chunk_size=2
    )
    _assert_bit_identical(result, full)
