"""Property-based checks of the baseline algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import Observations
from repro.baselines.correlation import CorrelationRanker
from repro.baselines.lift import Lift
from repro.baselines.multree import MulTree
from repro.baselines.netinf import NetInf
from repro.simulation.cascades import Cascade, CascadeSet
from repro.simulation.statuses import StatusMatrix


@st.composite
def cascade_observations(draw):
    """Random small cascade sets with consistent statuses and seed sets."""
    n = draw(st.integers(3, 8))
    beta = draw(st.integers(1, 10))
    cascades = []
    for _ in range(beta):
        n_infected = draw(st.integers(1, n))
        nodes = draw(
            st.lists(
                st.integers(0, n - 1), min_size=n_infected, max_size=n_infected,
                unique=True,
            )
        )
        times = {
            node: float(draw(st.integers(0, 4))) for node in nodes
        }
        # Normalise so at least one node is a seed (time 0).
        minimum = min(times.values())
        times = {node: t - minimum for node, t in times.items()}
        cascades.append(Cascade(times))
    cascade_set = CascadeSet(n, cascades)
    return Observations(
        n_nodes=n,
        statuses=cascade_set.to_status_matrix(),
        cascades=cascade_set,
        seed_sets=tuple(cascade_set.seed_sets()),
    )


@given(observations=cascade_observations(), budget=st.integers(1, 20))
@settings(max_examples=60, deadline=None)
def test_tree_methods_respect_budget_and_temporal_order(observations, budget):
    for method in (NetInf(budget), MulTree(budget)):
        output = method.infer(observations)
        assert output.n_edges <= budget
        # Every inferred edge must be temporally supported in some cascade.
        for source, target in output.graph.edges():
            assert any(
                cascade.time_of(source) < cascade.time_of(target) != float("inf")
                for cascade in observations.cascades
            )


@given(observations=cascade_observations(), budget=st.integers(1, 20))
@settings(max_examples=60, deadline=None)
def test_lift_budget_and_no_self_edges(observations, budget):
    output = Lift(budget, min_support=1).infer(observations)
    assert output.n_edges <= budget
    assert all(u != v for u, v in output.graph.edges())


@given(observations=cascade_observations(), budget=st.integers(1, 20))
@settings(max_examples=60, deadline=None)
def test_correlation_scores_sorted_and_positive(observations, budget):
    output = CorrelationRanker(budget).infer(observations)
    assert output.n_edges <= budget
    assert all(score > 0 for score in output.edge_scores.values())


@given(observations=cascade_observations())
@settings(max_examples=40, deadline=None)
def test_multree_outscores_netinf_in_supported_edges(observations):
    """MulTree's all-trees objective never selects an edge NetInf could
    not also justify: their candidate tables are identical."""
    budget = 10
    netinf_edges = NetInf(budget).infer(observations).graph.edge_set()
    multree_edges = MulTree(budget).infer(observations).graph.edge_set()
    from repro.baselines._cascadetrees import build_candidate_table

    table = build_candidate_table(observations.cascades, 0.3)
    candidates = {tuple(edge) for edge in table.edges.tolist()}
    assert netinf_edges <= candidates
    assert multree_edges <= candidates
