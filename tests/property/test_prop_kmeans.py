"""Property-based checks of the fixed-zero 2-means threshold."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kmeans import fixed_zero_two_means

non_negative_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(0, 200),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


@given(values=non_negative_arrays)
@settings(max_examples=100, deadline=None)
def test_cluster_sizes_partition(values):
    result = fixed_zero_two_means(values)
    assert result.n_zero_cluster + result.n_upper_cluster == values.size


@given(values=non_negative_arrays)
@settings(max_examples=100, deadline=None)
def test_threshold_within_data_range(values):
    result = fixed_zero_two_means(values)
    if values.size == 0 or result.n_zero_cluster == 0:
        assert result.threshold == 0.0
    else:
        assert 0.0 <= result.threshold <= float(values.max())


@given(values=non_negative_arrays)
@settings(max_examples=100, deadline=None)
def test_threshold_is_a_data_point_or_zero(values):
    result = fixed_zero_two_means(values)
    if result.n_zero_cluster > 0:
        assert np.any(np.isclose(values, result.threshold))
    else:
        assert result.threshold == 0.0


@given(values=non_negative_arrays)
@settings(max_examples=100, deadline=None)
def test_split_separates_clusters(values):
    """Everything in the zero cluster is <= everything in the upper cluster."""
    result = fixed_zero_two_means(values)
    if 0 < result.n_zero_cluster < values.size:
        ordered = np.sort(values)
        low_max = ordered[result.n_zero_cluster - 1]
        high_min = ordered[result.n_zero_cluster]
        assert low_max <= high_min
        assert result.threshold == low_max


@given(values=non_negative_arrays, scale=st.floats(0.1, 10.0))
@settings(max_examples=60, deadline=None)
def test_scale_equivariance(values, scale):
    """Scaling every value scales the threshold: the split is shape-based."""
    base = fixed_zero_two_means(values)
    scaled = fixed_zero_two_means(values * scale)
    assert scaled.n_zero_cluster == base.n_zero_cluster
    assert np.isclose(scaled.threshold, base.threshold * scale, atol=1e-9)


@given(values=non_negative_arrays)
@settings(max_examples=60, deadline=None)
def test_invariant_to_input_order(values):
    rng = np.random.default_rng(0)
    shuffled = values.copy()
    rng.shuffle(shuffled)
    a = fixed_zero_two_means(values)
    b = fixed_zero_two_means(shuffled)
    assert a.threshold == b.threshold
    assert a.n_zero_cluster == b.n_zero_cluster
