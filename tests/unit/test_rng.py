"""Seed normalisation and derivation."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_seed, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        a = as_generator(sequence)
        assert isinstance(a, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent(self):
        children = spawn_generators(0, 2)
        assert not np.array_equal(children[0].random(10), children[1].random(10))

    def test_deterministic_from_int_seed(self):
        a = [g.random() for g in spawn_generators(9, 3)]
        b = [g.random() for g in spawn_generators(9, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        rng = np.random.default_rng(0)
        children = spawn_generators(rng, 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "fig1", 200) == derive_seed(1, "fig1", 200)

    def test_component_sensitivity(self):
        assert derive_seed(1, "fig1", 200) != derive_seed(1, "fig1", 201)
        assert derive_seed(1, "fig1") != derive_seed(1, "fig2")
        assert derive_seed(1) != derive_seed(2)

    def test_float_components(self):
        assert derive_seed(1, 0.15) == derive_seed(1, 0.15)
        assert derive_seed(1, 0.15) != derive_seed(1, 0.25)

    def test_string_hash_is_process_stable(self):
        # FNV-1a of "abc" is fixed; derive_seed must not depend on PYTHONHASHSEED.
        assert derive_seed(0, "abc") == derive_seed(0, "abc")

    def test_bool_distinct_from_int(self):
        assert derive_seed(0, True) != derive_seed(0, 1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            derive_seed(0, object())  # type: ignore[arg-type]

    def test_result_is_uint32(self):
        value = derive_seed(123, "x", 4, 0.5)
        assert 0 <= value < 2**32
