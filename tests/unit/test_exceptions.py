"""Exception hierarchy contracts."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    DataError,
    GraphError,
    InferenceError,
    ReproError,
    SimulationError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        ConfigurationError,
        DataError,
        GraphError,
        SimulationError,
        InferenceError,
        ConvergenceError,
    ):
        assert issubclass(exc_type, ReproError)


def test_configuration_error_is_value_error():
    assert issubclass(ConfigurationError, ValueError)
    with pytest.raises(ValueError):
        raise ConfigurationError("bad parameter")


def test_data_error_is_value_error():
    assert issubclass(DataError, ValueError)


def test_graph_error_is_value_error():
    assert issubclass(GraphError, ValueError)


def test_simulation_and_inference_errors_are_runtime_errors():
    assert issubclass(SimulationError, RuntimeError)
    assert issubclass(InferenceError, RuntimeError)


def test_convergence_error_carries_diagnostics():
    error = ConvergenceError("did not converge", iterations=42, residual=0.5)
    assert error.iterations == 42
    assert error.residual == 0.5
    assert "did not converge" in str(error)


def test_convergence_error_defaults():
    error = ConvergenceError("plain")
    assert error.iterations is None
    assert error.residual is None


def test_convergence_error_is_inference_error():
    assert issubclass(ConvergenceError, InferenceError)
