"""Graph serialisation round-trips and malformed-input handling."""

import json

import pytest

from repro.exceptions import DataError
from repro.graphs import io
from repro.graphs.digraph import DiffusionGraph


class TestEdgeList:
    def test_round_trip(self, small_er_graph, tmp_path):
        path = tmp_path / "graph.txt"
        io.write_edge_list(small_er_graph, path)
        back = io.read_edge_list(path)
        assert back.n_nodes == small_er_graph.n_nodes
        assert back.edge_set() == small_er_graph.edge_set()

    def test_header_preserves_isolated_tail_nodes(self, tmp_path):
        graph = DiffusionGraph(10, [(0, 1)])
        path = tmp_path / "graph.txt"
        io.write_edge_list(graph, path)
        assert io.read_edge_list(path).n_nodes == 10

    def test_missing_header_infers_node_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n3 2\n")
        graph = io.read_edge_list(path)
        assert graph.n_nodes == 4
        assert graph.has_edge(3, 2)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1\n")
        assert io.read_edge_list(path).n_edges == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1 2\n")
        with pytest.raises(DataError, match=":2"):
            io.read_edge_list(path)

    def test_non_integer_ids_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(DataError):
            io.read_edge_list(path)

    def test_malformed_header_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nodes: many\n0 1\n")
        with pytest.raises(DataError):
            io.read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("")
        graph = io.read_edge_list(path)
        assert graph.n_nodes == 0
        assert graph.n_edges == 0


class TestJson:
    def test_round_trip_via_dict(self, small_er_graph):
        document = io.graph_to_json(small_er_graph)
        back = io.graph_from_json(document)
        assert back.edge_set() == small_er_graph.edge_set()

    def test_round_trip_via_file(self, small_er_graph, tmp_path):
        path = tmp_path / "g.json"
        io.write_json(small_er_graph, path)
        back = io.read_json(path)
        assert back.edge_set() == small_er_graph.edge_set()
        assert back.n_nodes == small_er_graph.n_nodes

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(DataError):
            io.graph_from_json({"format": "something-else"})

    def test_missing_fields_rejected(self):
        with pytest.raises(DataError):
            io.graph_from_json({"format": "repro.diffusion_graph"})

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text("{not json")
        with pytest.raises(DataError):
            io.read_json(path)

    def test_document_is_json_serialisable(self, small_er_graph):
        text = json.dumps(io.graph_to_json(small_er_graph))
        assert "repro.diffusion_graph" in text
