"""Cascade and CascadeSet observation views."""

import math

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.simulation.cascades import Cascade, CascadeSet


class TestCascade:
    def test_infected_and_seeds(self):
        cascade = Cascade({0: 0.0, 1: 0.0, 2: 1.0, 3: 2.0})
        assert cascade.infected == {0, 1, 2, 3}
        assert cascade.seeds == {0, 1}

    def test_time_of_uninfected_is_inf(self):
        cascade = Cascade({0: 0.0})
        assert cascade.time_of(5) == math.inf

    def test_negative_time_rejected(self):
        with pytest.raises(DataError):
            Cascade({0: -1.0})

    def test_ordered(self):
        cascade = Cascade({3: 2.0, 1: 0.0, 2: 1.0})
        assert cascade.ordered() == [(1, 0.0), (2, 1.0), (3, 2.0)]

    def test_potential_parents(self):
        cascade = Cascade({0: 0.0, 1: 1.0, 2: 1.0, 3: 2.0})
        assert set(cascade.potential_parents(3)) == {0, 1, 2}
        assert cascade.potential_parents(1) == [0]
        assert cascade.potential_parents(9) == []

    def test_empty_cascade(self):
        cascade = Cascade({})
        assert cascade.seeds == frozenset()
        assert len(cascade) == 0


class TestCascadeSet:
    def _set(self) -> CascadeSet:
        return CascadeSet(
            4,
            [
                Cascade({0: 0.0, 1: 1.0}),
                Cascade({2: 0.0, 3: 1.0, 1: 2.0}),
            ],
        )

    def test_shape(self):
        cascades = self._set()
        assert cascades.beta == 2
        assert cascades.n_nodes == 4
        assert len(cascades) == 2

    def test_default_horizon_past_latest(self):
        assert self._set().horizon == 3.0

    def test_explicit_horizon_validated(self):
        with pytest.raises(DataError):
            CascadeSet(2, [Cascade({0: 0.0, 1: 5.0})], horizon=2.0)

    def test_out_of_range_node_rejected(self):
        with pytest.raises(DataError):
            CascadeSet(2, [Cascade({5: 0.0})])

    def test_to_status_matrix(self):
        statuses = self._set().to_status_matrix()
        assert statuses.values.tolist() == [[1, 1, 0, 0], [0, 1, 1, 1]]

    def test_seed_sets(self):
        assert self._set().seed_sets() == [frozenset({0}), frozenset({2})]

    def test_time_matrix(self):
        times = self._set().time_matrix()
        assert times[0, 0] == 0.0
        assert times[0, 1] == 1.0
        assert np.isinf(times[0, 2])
        assert times[1, 1] == 2.0

    def test_indexing_and_iteration(self):
        cascades = self._set()
        assert cascades[0].seeds == {0}
        assert [len(c) for c in cascades] == [2, 3]

    def test_drop_timestamps_keeps_seeds(self):
        cascades = self._set()
        trimmed = cascades.drop_timestamps_fraction(1.0, seed=0)
        assert trimmed.seed_sets() == cascades.seed_sets()
        assert all(len(c) == len(c.seeds) for c in trimmed)

    def test_drop_zero_fraction_is_identity(self):
        cascades = self._set()
        same = cascades.drop_timestamps_fraction(0.0, seed=0)
        assert same.to_status_matrix() == cascades.to_status_matrix()

    def test_empty_set_horizon(self):
        cascades = CascadeSet(3, [])
        assert cascades.horizon == 1.0
        assert cascades.beta == 0

    def test_time_noise_preserves_statuses(self):
        cascades = self._set()
        noisy = cascades.with_time_noise(1.0, seed=0)
        assert noisy.to_status_matrix() == cascades.to_status_matrix()

    def test_time_noise_preserves_seed_times(self):
        cascades = self._set()
        noisy = cascades.with_time_noise(1.0, seed=1)
        for original, corrupted in zip(cascades, noisy):
            for seed_node in original.seeds:
                assert corrupted.times[seed_node] == 0.0

    def test_time_noise_actually_changes_times(self):
        cascades = CascadeSet(
            4, [Cascade({0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}) for _ in range(10)]
        )
        noisy = cascades.with_time_noise(1.0, seed=2)
        changed = sum(
            1
            for original, corrupted in zip(cascades, noisy)
            for node in original.times
            if original.times[node] != corrupted.times[node]
        )
        assert changed > 0

    def test_time_noise_never_creates_fake_seeds(self):
        cascades = CascadeSet(
            4, [Cascade({0: 0.0, 1: 1.0, 2: 2.0}) for _ in range(20)]
        )
        noisy = cascades.with_time_noise(1.0, max_shift=5, seed=3)
        for cascade in noisy:
            non_seed_times = [t for node, t in cascade.times.items() if node != 0]
            assert all(t > 0.0 for t in non_seed_times)

    def test_time_noise_zero_fraction_is_identity(self):
        cascades = self._set()
        same = cascades.with_time_noise(0.0, seed=0)
        for original, copy in zip(cascades, same):
            assert dict(original.times) == dict(copy.times)
