"""Stochastic Kronecker graph generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graphs.generators.kronecker import (
    CORE_PERIPHERY_INITIATOR,
    HIERARCHICAL_INITIATOR,
    kronecker_digraph,
)
from repro.graphs.metrics import summarize_graph


class TestKroneckerDigraph:
    def test_node_count_is_power_of_two(self):
        graph = kronecker_digraph(5, seed=0)
        assert graph.n_nodes == 32

    def test_deterministic_for_seed(self):
        a = kronecker_digraph(6, seed=3)
        b = kronecker_digraph(6, seed=3)
        assert a.edge_set() == b.edge_set()

    def test_target_average_degree(self):
        graph = kronecker_digraph(8, target_avg_degree=4.0, seed=1)
        realised = graph.n_edges / graph.n_nodes
        assert realised == pytest.approx(4.0, rel=0.25)

    def test_core_periphery_concentrates_low_ids(self):
        # Node 0 (all-zero bits) hits theta[0,0]^k on every pair with
        # low-bit nodes; its degree must far exceed the median.
        graph = kronecker_digraph(8, CORE_PERIPHERY_INITIATOR, seed=2)
        degrees = graph.out_degrees() + graph.in_degrees()
        assert degrees[0] > 3 * np.median(degrees[degrees > 0])

    def test_hierarchical_initiator_is_assortative(self):
        # [[.9,.1],[.1,.9]]: same-prefix nodes connect far more often.
        graph = kronecker_digraph(7, HIERARCHICAL_INITIATOR, scale=0.3, seed=3)
        half = graph.n_nodes // 2
        same, cross = 0, 0
        for u, v in graph.edges():
            if (u < half) == (v < half):
                same += 1
            else:
                cross += 1
        assert same > 3 * max(cross, 1)

    def test_no_self_loops(self):
        graph = kronecker_digraph(6, seed=4)
        assert all(u != v for u, v in graph.edges())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"k": 13},
            {"k": 4, "initiator": ((0.5,),)},
            {"k": 4, "initiator": ((1.5, 0.1), (0.1, 0.1))},
            {"k": 4, "scale": 2.0, "target_avg_degree": 3.0},
            {"k": 4, "scale": -1.0},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ConfigurationError):
            kronecker_digraph(**kwargs)

    def test_summary_sane(self):
        summary = summarize_graph(kronecker_digraph(7, target_avg_degree=3, seed=5))
        assert summary.n_nodes == 128
        assert summary.density > 0
