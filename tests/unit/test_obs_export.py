"""Exporters: JSONL spans, Chrome trace_event JSON, Prometheus text."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    spans_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


def _sample_spans():
    return [
        Span(name="tends.fit", span_id=1, parent_id=None, start=1.0, end=4.0,
             pid=100, thread="MainThread"),
        Span(name="tends.imi", span_id=2, parent_id=1, start=1.5, end=2.0,
             pid=100, thread="MainThread", attrs={"kind": "pairwise"}),
        Span(name="executor.chunk", span_id=3, parent_id=1, start=2.0, end=3.0,
             pid=101, thread="MainThread", attrs={"index": 0}),
    ]


class TestSpansJsonl:
    def test_one_object_per_line_roundtrip(self):
        spans = _sample_spans()
        lines = spans_jsonl(spans).splitlines()
        assert len(lines) == 3
        rebuilt = [Span.from_dict(json.loads(line)) for line in lines]
        assert rebuilt == spans

    def test_empty_input_is_empty_string(self):
        assert spans_jsonl([]) == ""

    def test_write_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "trace.jsonl"
        write_spans_jsonl(_sample_spans(), target)
        assert target.exists()
        assert len(target.read_text().splitlines()) == 3

    def test_write_empty_produces_empty_file(self, tmp_path):
        target = write_spans_jsonl([], tmp_path / "empty.jsonl")
        assert target.read_text() == ""


class TestChromeTrace:
    def test_complete_events_with_rebased_microseconds(self):
        document = chrome_trace(_sample_spans())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 3
        fit = next(e for e in events if e["name"] == "tends.fit")
        assert fit["ts"] == 0.0  # earliest span rebased to zero
        assert fit["dur"] == pytest.approx(3e6)
        imi = next(e for e in events if e["name"] == "tends.imi")
        assert imi["ts"] == pytest.approx(0.5e6)

    def test_category_is_name_prefix(self):
        document = chrome_trace(_sample_spans())
        cats = {e["name"]: e["cat"] for e in document["traceEvents"]
                if e["ph"] == "X"}
        assert cats["tends.fit"] == "tends"
        assert cats["executor.chunk"] == "executor"

    def test_args_carry_attrs_and_span_identity(self):
        document = chrome_trace(_sample_spans())
        imi = next(e for e in document["traceEvents"] if e.get("name") == "tends.imi")
        assert imi["args"]["kind"] == "pairwise"
        assert imi["args"]["span_id"] == 2
        assert imi["args"]["parent_id"] == 1

    def test_distinct_pids_get_distinct_lanes_and_names(self):
        document = chrome_trace(_sample_spans())
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in metadata} == {"thread_name"}
        assert {(e["pid"], e["args"]["name"]) for e in metadata} == {
            (100, "MainThread"),
            (101, "MainThread"),
        }
        lanes = {(e["pid"], e["tid"]) for e in metadata}
        assert len(lanes) == 2

    def test_open_spans_are_dropped(self):
        open_span = Span(name="open", span_id=9, parent_id=None, start=5.0)
        document = chrome_trace(_sample_spans() + [open_span])
        assert all(e.get("name") != "open" for e in document["traceEvents"])

    def test_epoch_offset_recorded(self):
        document = chrome_trace(_sample_spans(), epoch_offset=123.5)
        assert document["otherData"]["epoch_offset"] == 123.5
        assert document["otherData"]["time_base"] == 1.0

    def test_empty_trace_is_valid(self):
        document = chrome_trace([])
        assert document["traceEvents"] == []

    def test_write_is_json_loadable(self, tmp_path):
        target = write_chrome_trace(_sample_spans(), tmp_path / "trace.json")
        document = json.loads(target.read_text())
        assert "traceEvents" in document

    def test_real_tracer_output_exports(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("a.b"):
                pass
        document = chrome_trace(tracer.finished(),
                                epoch_offset=tracer.epoch_offset)
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert sorted(names) == ["a", "a.b"]


class TestPrometheusText:
    def _snapshot(self):
        metrics = MetricsRegistry()
        metrics.inc("tends_score_evaluations_total", 12)
        metrics.inc("executor_retries_total", 2, strategy="process")
        metrics.set_gauge("tends_threshold_tau", 0.025)
        metrics.observe("tends_greedy_iterations", 3)
        metrics.observe("tends_greedy_iterations", 5)
        return metrics.snapshot()

    def test_type_headers_and_prefix(self):
        text = prometheus_text(self._snapshot())
        assert "# TYPE repro_tends_score_evaluations_total counter" in text
        assert "# TYPE repro_tends_threshold_tau gauge" in text
        assert "repro_tends_score_evaluations_total 12" in text

    def test_labels_preserved(self):
        text = prometheus_text(self._snapshot())
        assert 'repro_executor_retries_total{strategy="process"} 2' in text

    def test_histogram_expands_to_summary_series(self):
        text = prometheus_text(self._snapshot())
        for stat, value in (("count", "2"), ("sum", "8.0"),
                            ("min", "3"), ("max", "5")):
            assert f"repro_tends_greedy_iterations_{stat} {value}" in text

    def test_histogram_typed_as_prometheus_summary(self):
        text = prometheus_text(self._snapshot())
        # _count/_sum are the summary's own series under one TYPE header;
        # min/max have no summary equivalent and stay gauges.
        assert "# TYPE repro_tends_greedy_iterations summary" in text
        assert "# TYPE repro_tends_greedy_iterations_min gauge" in text
        assert "# TYPE repro_tends_greedy_iterations_max gauge" in text
        assert "# TYPE repro_tends_greedy_iterations_count" not in text
        assert "# TYPE repro_tends_greedy_iterations_sum" not in text

    def test_labelled_histogram_shares_one_type_header(self):
        metrics = MetricsRegistry()
        metrics.observe("serve_absorb_seconds", 0.5, policy="block")
        metrics.observe("serve_absorb_seconds", 0.7, policy="shed")
        text = prometheus_text(metrics.snapshot())
        assert text.count("# TYPE repro_serve_absorb_seconds summary") == 1
        assert 'repro_serve_absorb_seconds_count{policy="block"} 1' in text
        assert 'repro_serve_absorb_seconds_sum{policy="shed"} 0.7' in text

    def test_custom_prefix(self):
        text = prometheus_text(self._snapshot(), prefix="x_")
        assert "# TYPE x_tends_threshold_tau gauge" in text
        assert "repro_" not in text

    def test_empty_snapshot_is_empty(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        assert prometheus_text(empty) == ""

    def test_write_round_trips(self, tmp_path):
        target = write_prometheus(self._snapshot(), tmp_path / "metrics.prom")
        text = target.read_text()
        assert text.endswith("\n")
        assert text == prometheus_text(self._snapshot())
