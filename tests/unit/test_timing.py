"""Stopwatch and timed() behaviour."""

import pytest

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_context_manager_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first

    def test_start_twice_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_elapsed_non_negative(self):
        watch = Stopwatch()
        with watch:
            _ = sum(range(100))
        assert watch.elapsed >= 0.0


class TestTimed:
    def test_reports_elapsed(self):
        with timed() as elapsed:
            _ = sum(range(100))
        assert elapsed() >= 0.0

    def test_freezes_after_exit(self):
        with timed() as elapsed:
            pass
        first = elapsed()
        second = elapsed()
        assert first == second

    def test_freezes_on_exception(self):
        with pytest.raises(ValueError):
            with timed() as elapsed:
                raise ValueError("boom")
        assert elapsed() == elapsed()
