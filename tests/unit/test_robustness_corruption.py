"""Corruption models: record contents, mask semantics, determinism."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.robustness import (
    CORRUPTION_KINDS,
    CorruptedObservations,
    apply_corruptions,
    cascade_subsample,
    corrupt,
    flip_noise,
    missing_at_random,
    node_dropout,
)
from repro.simulation.statuses import StatusMatrix


@pytest.fixture
def clean() -> StatusMatrix:
    rng = np.random.default_rng(7)
    return StatusMatrix((rng.random((60, 12)) < 0.4).astype(int))


class TestFlipNoise:
    def test_flips_only_where_recorded(self, clean):
        record = flip_noise(clean, 0.2, seed=1)
        changed = record.statuses.values != clean.values
        assert changed.sum() == record.details["n_flipped"]
        assert 0 < record.details["n_flipped"] < clean.values.size

    def test_zero_rate_is_identity(self, clean):
        record = flip_noise(clean, 0.0, seed=1)
        assert record.statuses == clean

    def test_asymmetric_rates_flip_one_direction(self, clean):
        record = flip_noise(clean, rate_10=1.0, seed=2)
        # Every 1 became 0 and no 0 became 1.
        assert record.statuses.values.sum() == 0
        assert record.details["rate_01"] == 0.0

    def test_symmetric_and_asymmetric_are_exclusive(self, clean):
        with pytest.raises(DataError, match="not both"):
            flip_noise(clean, 0.1, rate_01=0.2, seed=0)
        with pytest.raises(DataError, match="needs rate"):
            flip_noise(clean, seed=0)

    def test_does_not_touch_masked_entries(self, clean):
        masked = missing_at_random(clean, 0.3, seed=5).statuses
        record = flip_noise(masked, 1.0, seed=6)
        # Unobserved entries keep their stored placeholder (0) and stay masked.
        assert (record.statuses.values[~masked.mask] == 0).all()
        assert (record.statuses.mask == masked.mask).all()

    def test_clean_reference_preserved(self, clean):
        record = flip_noise(clean, 0.5, seed=3)
        assert record.clean == clean
        assert record.kind == "flip"
        assert record.seed == 3


class TestMissingAtRandom:
    def test_encodes_missingness_in_mask(self, clean):
        record = missing_at_random(clean, 0.25, seed=4)
        assert record.statuses.has_missing
        assert record.mask is not None
        assert record.details["n_missing"] == int((~record.mask).sum())
        # Observed entries are untouched.
        assert (
            record.statuses.values[record.mask] == clean.values[record.mask]
        ).all()

    def test_masked_values_are_zeroed_not_stale(self, clean):
        record = missing_at_random(clean, 0.5, seed=9)
        assert (record.statuses.values[~record.mask] == 0).all()

    def test_zero_rate_yields_unmasked_matrix(self, clean):
        record = missing_at_random(clean, 0.0, seed=4)
        assert not record.statuses.has_missing
        assert record.statuses == clean

    def test_composes_with_existing_mask(self, clean):
        first = missing_at_random(clean, 0.3, seed=1)
        second = missing_at_random(first.statuses, 0.3, seed=2)
        # Already-missing entries stay missing.
        assert (~second.mask[~first.mask]).all()


class TestNodeDropout:
    def test_dropped_columns_fully_unobserved(self, clean):
        record = node_dropout(clean, 0.4, seed=3)
        dropped = record.details["dropped_nodes"]
        assert record.details["n_dropped"] == len(dropped)
        for node in dropped:
            assert not record.mask[:, node].any()
        kept = [n for n in range(clean.n_nodes) if n not in dropped]
        for node in kept:
            assert record.mask[:, node].all()

    def test_shape_is_preserved(self, clean):
        record = node_dropout(clean, 0.5, seed=8)
        assert record.statuses.beta == clean.beta
        assert record.statuses.n_nodes == clean.n_nodes


class TestCascadeSubsample:
    def test_drops_whole_rows_in_order(self, clean):
        record = cascade_subsample(clean, 0.5, seed=2)
        assert record.statuses.beta == record.details["n_kept"]
        assert record.statuses.beta + record.details["n_dropped"] == clean.beta
        # Surviving rows appear in the clean matrix, in order.
        kept_iter = iter(range(clean.beta))
        for row in record.statuses.values:
            assert any((clean.values[i] == row).all() for i in kept_iter)

    def test_at_least_one_row_survives(self, clean):
        record = cascade_subsample(clean, 1.0, seed=0)
        assert record.statuses.beta >= 1

    def test_zero_processes_rejected(self):
        with pytest.raises(DataError, match="zero processes"):
            cascade_subsample(StatusMatrix(np.empty((0, 3))), 0.5, seed=0)


class TestRegistryAndChaining:
    def test_registry_covers_all_models(self):
        assert set(CORRUPTION_KINDS) == {"flip", "missing", "dropout", "subsample"}

    def test_corrupt_dispatches_identically(self, clean):
        assert corrupt(clean, "missing", 0.2, seed=5) == missing_at_random(
            clean, 0.2, seed=5
        )

    def test_unknown_kind_is_an_error(self, clean):
        with pytest.raises(DataError, match="unknown corruption kind"):
            corrupt(clean, "gamma-rays", 0.2, seed=5)

    def test_chain_applies_in_sequence(self, clean):
        records = apply_corruptions(
            clean, [("flip", 0.1), ("missing", 0.2)], seed=11
        )
        assert [r.kind for r in records] == ["flip", "missing"]
        assert records[0].clean == clean
        assert records[1].clean == records[0].statuses
        assert records[-1].statuses.has_missing

    def test_chain_is_deterministic(self, clean):
        steps = [("flip", 0.1), ("dropout", 0.2), ("missing", 0.1)]
        first = apply_corruptions(clean, steps, seed=13)
        second = apply_corruptions(clean, steps, seed=13)
        assert [r.statuses for r in first] == [r.statuses for r in second]

    def test_editing_later_step_keeps_earlier_streams(self, clean):
        base = apply_corruptions(clean, [("flip", 0.1), ("missing", 0.2)], seed=13)
        edited = apply_corruptions(clean, [("flip", 0.1), ("missing", 0.4)], seed=13)
        # SeedSequence spawning: step 0's stream is independent of step 1.
        assert base[0].statuses == edited[0].statuses


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(CORRUPTION_KINDS))
    def test_same_seed_same_output(self, clean, kind):
        first = corrupt(clean, kind, 0.3, seed=21)
        second = corrupt(clean, kind, 0.3, seed=21)
        assert first == second

    @pytest.mark.parametrize("kind", sorted(CORRUPTION_KINDS))
    def test_different_seeds_differ(self, clean, kind):
        first = corrupt(clean, kind, 0.3, seed=21)
        second = corrupt(clean, kind, 0.3, seed=22)
        assert first.statuses != second.statuses

    def test_records_pickle(self, clean):
        record = corrupt(clean, "missing", 0.3, seed=21)
        restored = pickle.loads(pickle.dumps(record))
        assert restored == record
        assert isinstance(restored, CorruptedObservations)
