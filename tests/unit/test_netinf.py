"""NetInf greedy best-tree inference."""

import pytest

from repro.baselines.base import Observations
from repro.baselines.netinf import NetInf
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.cascades import Cascade, CascadeSet
from repro.simulation.statuses import StatusMatrix


def _chain_observations(beta: int = 30) -> Observations:
    """Deterministic chain cascades 0 -> 1 -> 2 every process."""
    cascades = CascadeSet(
        3, [Cascade({0: 0.0, 1: 1.0, 2: 2.0}) for _ in range(beta)]
    )
    return Observations(
        n_nodes=3,
        statuses=cascades.to_status_matrix(),
        cascades=cascades,
    )


class TestNetInf:
    def test_recovers_chain(self):
        output = NetInf(n_edges=2).infer(_chain_observations())
        assert output.graph.edge_set() == {(0, 1), (1, 2)}

    def test_budget_respected(self, small_observations):
        obs = Observations.from_simulation(small_observations)
        output = NetInf(n_edges=5).infer(obs)
        assert output.n_edges <= 5

    def test_stops_when_gains_exhausted(self):
        # Only two explainable parent-child pairs exist; asking for more
        # edges must not fabricate them.
        output = NetInf(n_edges=50).infer(_chain_observations())
        assert output.n_edges <= 3

    def test_requires_cascades(self, tiny_statuses):
        with pytest.raises(DataError):
            NetInf(n_edges=1).infer(Observations.from_statuses(tiny_statuses))

    def test_scores_positive(self):
        output = NetInf(n_edges=2).infer(_chain_observations())
        assert all(score > 0 for score in output.edge_scores.values())

    def test_gap_one_preferred_over_gap_two(self):
        output = NetInf(n_edges=1).infer(_chain_observations())
        # (1, 2) and (0, 1) both have gap 1 and identical weights; (0, 2)
        # has gap 2 and must lose.
        assert (0, 2) not in output.graph.edge_set()

    def test_empty_cascades(self):
        cascades = CascadeSet(3, [])
        obs = Observations(
            n_nodes=3,
            statuses=StatusMatrix([[0, 0, 0]]),
            cascades=cascades,
        )
        # statuses beta (1) and cascades beta (0) mismatch is fine for the
        # table builder; it sees no pairs and returns an empty graph.
        output = NetInf(n_edges=3).infer(obs)
        assert output.n_edges == 0

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_budget(self, bad):
        with pytest.raises(ConfigurationError):
            NetInf(n_edges=bad)

    def test_invalid_transmission_prob(self):
        with pytest.raises(ConfigurationError):
            NetInf(n_edges=1, transmission_prob=1.0)
