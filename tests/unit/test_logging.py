"""Package logger helpers."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


def test_root_logger_name():
    assert get_logger().name == "repro"


def test_child_logger_name():
    assert get_logger("core.tends").name == "repro.core.tends"


def test_already_qualified_name_not_doubled():
    assert get_logger("repro.graphs").name == "repro.graphs"


def test_enable_console_logging_is_idempotent():
    logger = enable_console_logging(logging.WARNING)
    n_handlers = len(logger.handlers)
    logger_again = enable_console_logging(logging.WARNING)
    assert logger is logger_again
    assert len(logger_again.handlers) == n_handlers


def test_enable_console_logging_sets_level():
    logger = enable_console_logging(logging.DEBUG)
    assert logger.level == logging.DEBUG
