"""Package logger helpers."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


def test_root_logger_name():
    assert get_logger().name == "repro"


def test_child_logger_name():
    assert get_logger("core.tends").name == "repro.core.tends"


def test_already_qualified_name_not_doubled():
    assert get_logger("repro.graphs").name == "repro.graphs"


def test_enable_console_logging_is_idempotent():
    logger = enable_console_logging(logging.WARNING)
    n_handlers = len(logger.handlers)
    logger_again = enable_console_logging(logging.WARNING)
    assert logger is logger_again
    assert len(logger_again.handlers) == n_handlers


def test_enable_console_logging_sets_level():
    logger = enable_console_logging(logging.DEBUG)
    assert logger.level == logging.DEBUG


def test_repeated_calls_relevel_the_existing_handler():
    # A second call with a different level must re-level the handler it
    # already installed, not leave it stuck at the first level (a DEBUG
    # handler behind a WARNING one would silently drop -vv output).
    enable_console_logging(logging.WARNING)
    logger = enable_console_logging(logging.DEBUG)
    handlers = [
        h for h in logger.handlers if isinstance(h, logging.StreamHandler)
    ]
    assert len(handlers) == 1
    assert handlers[0].level == logging.DEBUG
    assert logger.level == logging.DEBUG


def test_child_loggers_left_untouched():
    child = get_logger("core.executor")
    child_level, child_propagate = child.level, child.propagate
    enable_console_logging(logging.INFO)
    assert child.level == child_level
    assert child.propagate is child_propagate
    assert not any(
        isinstance(h, logging.StreamHandler) for h in child.handlers
    )
