"""Power-law degree sequence sampling."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graphs.generators.powerlaw import (
    fit_powerlaw_exponent,
    truncated_powerlaw_degrees,
)


class TestTruncatedPowerlawDegrees:
    def test_shape_and_dtype(self):
        degrees = truncated_powerlaw_degrees(100, 4.0, 2.0, seed=0)
        assert degrees.shape == (100,)
        assert degrees.dtype == np.int64

    def test_mean_on_target(self):
        degrees = truncated_powerlaw_degrees(500, 6.0, 2.0, seed=1)
        assert abs(degrees.mean() - 6.0) < 0.51

    def test_bounds_respected(self):
        degrees = truncated_powerlaw_degrees(300, 5.0, 1.0, k_min=2, k_max=20, seed=2)
        assert degrees.min() >= 2
        assert degrees.max() <= 20

    def test_dispersion_decreases_with_exponent(self):
        heavy = truncated_powerlaw_degrees(2000, 4.0, 1.0, seed=3)
        light = truncated_powerlaw_degrees(2000, 4.0, 3.0, seed=3)
        assert heavy.std() > light.std()

    def test_deterministic_for_seed(self):
        a = truncated_powerlaw_degrees(50, 4.0, 2.0, seed=7)
        b = truncated_powerlaw_degrees(50, 4.0, 2.0, seed=7)
        assert np.array_equal(a, b)

    def test_infeasible_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            truncated_powerlaw_degrees(100, 0.5, 2.0, k_min=1)

    def test_kmax_below_kmin_rejected(self):
        with pytest.raises(ConfigurationError):
            truncated_powerlaw_degrees(100, 4.0, 2.0, k_min=5, k_max=3)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_exponent_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            truncated_powerlaw_degrees(100, 4.0, bad)

    def test_single_node(self):
        degrees = truncated_powerlaw_degrees(1, 1.0, 2.0, k_max=1, seed=0)
        assert degrees.tolist() == [1]


class TestFitPowerlawExponent:
    def test_orders_tail_weights(self):
        # The estimator must rank heavier tails below lighter ones, and land
        # in a plausible band for a shape-1.5 Pareto (density exponent 2.5).
        rng = np.random.default_rng(0)
        heavy = (1.0 - rng.random(20000)) ** (-1.0 / 1.0)
        light = (1.0 - rng.random(20000)) ** (-1.0 / 2.5)
        mid = (1.0 - rng.random(20000)) ** (-1.0 / 1.5)
        f_heavy = fit_powerlaw_exponent(np.floor(heavy), k_min=2)
        f_light = fit_powerlaw_exponent(np.floor(light), k_min=2)
        f_mid = fit_powerlaw_exponent(np.floor(mid), k_min=2)
        assert f_heavy < f_mid < f_light
        assert 1.6 < f_mid < 3.0

    def test_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_powerlaw_exponent(np.array([3.0]))

    def test_degenerate_sample(self):
        # All values at k_min: log-sum positive but tiny -> huge exponent.
        fitted = fit_powerlaw_exponent(np.array([1, 1, 1, 1]), k_min=1)
        assert fitted > 2.0
