"""Unit tests for drift-aware ``Tends.partial_fit`` and self-healing.

The contracts under test, in decreasing order of load-bearing-ness:

* ``drift="ignore"`` is byte-for-byte today's ``partial_fit`` — same
  model fingerprint, no report;
* ``drift="detect"`` attaches a report but the model still accumulates
  exactly as ``"ignore"`` does;
* an adaptation with every node flagged is fingerprint-identical to a
  fresh :meth:`Tends.fit` on the recent window alone (the equivalence
  the self-healing path is built on);
* a partial adaptation re-searches only the affected nodes and keeps
  quiescent parent sets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift import DriftConfig, DriftReport, PairDrift
from repro.core.tends import Tends
from repro.exceptions import ConfigurationError, InferenceError
from repro.graphs import erdos_renyi_digraph
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.statuses import StatusMatrix


def _stream(n=24, beta=160, seed=5):
    graph = erdos_renyi_digraph(n, 0.12, seed=seed)
    return DiffusionSimulator(graph, seed=seed).run(beta=beta).statuses


def _shifted_stream(n=24, beta=160, seed=9):
    """A stream whose second half comes from a different graph."""
    first = DiffusionSimulator(
        erdos_renyi_digraph(n, 0.12, seed=seed), seed=seed
    ).run(beta=beta // 2).statuses
    second = DiffusionSimulator(
        erdos_renyi_digraph(n, 0.12, seed=seed + 1), seed=seed + 1
    ).run(beta=beta - beta // 2).statuses
    return first, second


class TestIgnoreMode:
    def test_ignore_is_bit_identical_to_plain_partial_fit(self):
        statuses = _stream()
        head = statuses.subset(range(0, 100))
        tail = statuses.subset(range(100, 160))

        plain = Tends()
        plain.fit(head)
        plain_result = plain.partial_fit(tail)

        flagged = Tends()
        flagged.fit(head)
        flagged_result = flagged.partial_fit(tail, drift="ignore")

        assert flagged.model.fingerprint() == plain.model.fingerprint()
        assert flagged_result.drift is None
        assert np.array_equal(plain_result.mi_matrix, flagged_result.mi_matrix)

    def test_unknown_mode_rejected(self):
        estimator = Tends()
        estimator.fit(_stream())
        with pytest.raises(ConfigurationError):
            estimator.partial_fit(_stream(seed=6), drift="panic")

    def test_bad_window_rejected(self):
        estimator = Tends()
        estimator.fit(_stream())
        with pytest.raises(ConfigurationError):
            estimator.partial_fit(
                _stream(seed=6), drift="detect", drift_window=0
            )


class TestDetectMode:
    def test_detect_attaches_report_and_still_accumulates(self):
        statuses = _stream()
        head = statuses.subset(range(0, 100))
        tail = statuses.subset(range(100, 160))

        plain = Tends()
        plain.fit(head)
        plain.partial_fit(tail)

        detecting = Tends()
        detecting.fit(head)
        result = detecting.partial_fit(tail, drift="detect")

        assert result.drift is not None
        assert result.drift.recent_beta == 60
        assert result.drift.reference_beta == 100
        # Detection is observational: the model matches plain accumulation.
        assert detecting.model.fingerprint() == plain.model.fingerprint()

    def test_stationary_stream_not_flagged(self):
        statuses = _stream(beta=200)
        estimator = Tends()
        estimator.fit(statuses.subset(range(0, 140)))
        result = estimator.partial_fit(
            statuses.subset(range(140, 200)), drift="detect"
        )
        assert not result.drift.drifted

    def test_shifted_stream_flagged(self):
        first, second = _shifted_stream()
        estimator = Tends()
        estimator.fit(first)
        result = estimator.partial_fit(second, drift="detect")
        assert result.drift.drifted

    def test_detect_method_is_read_only(self):
        estimator = Tends()
        estimator.fit(_stream())
        before = estimator.model.fingerprint()
        report = estimator.detect_drift()
        assert isinstance(report, DriftReport)
        assert estimator.model.fingerprint() == before

    def test_detect_method_requires_model(self):
        with pytest.raises(InferenceError):
            Tends().detect_drift()


class TestAdaptMode:
    def test_all_flagged_adaptation_matches_fresh_fit_on_window(self):
        first, second = _shifted_stream()
        estimator = Tends()
        estimator.fit(first)
        result = estimator.partial_fit(
            second,
            drift="adapt",
            drift_config=DriftConfig(min_pair_obs=1),
        )
        assert result.drift is not None and result.drift.drifted
        # Force-flag every node via a synthetic all-nodes report to pin
        # the equivalence regardless of which pairs the detector chose.
        n = second.n_nodes
        report = DriftReport(
            drifted_pairs=tuple(
                PairDrift(i=i, j=i + 1, statistic=1.0, p_value=0.0)
                for i in range(n - 1)
            ),
            affected_nodes=tuple(range(n)),
            n_pairs_tested=n - 1,
            alpha=0.01,
            correction="bh",
            statistic="gtest",
            reference_beta=first.beta,
            recent_beta=second.beta,
        )
        healer = Tends()
        healer.fit(first)
        healer.partial_fit(second)
        healer.apply_drift_adaptation(report)

        fresh = Tends()
        fresh.fit(second)
        assert healer.model.fingerprint() == fresh.model.fingerprint()

    def test_partial_adaptation_keeps_quiescent_parent_sets(self):
        first, second = _shifted_stream()
        estimator = Tends()
        estimator.fit(first)
        before = estimator.partial_fit(second)
        affected = (0, 1)
        report = DriftReport(
            drifted_pairs=(PairDrift(i=0, j=1, statistic=9.0, p_value=1e-9),),
            affected_nodes=affected,
            n_pairs_tested=10,
            alpha=0.01,
            correction="bh",
            statistic="gtest",
            reference_beta=first.beta,
            recent_beta=second.beta,
        )
        after = estimator.apply_drift_adaptation(report)
        for node in range(second.n_nodes):
            if node in affected:
                continue
            assert after.parent_sets[node] == before.parent_sets[node]

    def test_adaptation_requires_drifted_report(self):
        estimator = Tends()
        estimator.fit(_stream())
        quiet = DriftReport(
            drifted_pairs=(),
            affected_nodes=(),
            n_pairs_tested=5,
            alpha=0.01,
            correction="bh",
            statistic="gtest",
            reference_beta=100,
            recent_beta=60,
        )
        with pytest.raises(InferenceError):
            estimator.apply_drift_adaptation(quiet)

    def test_adaptation_requires_model(self):
        report = DriftReport(
            drifted_pairs=(PairDrift(i=0, j=1, statistic=1.0, p_value=0.0),),
            affected_nodes=(0, 1),
            n_pairs_tested=1,
            alpha=0.01,
            correction="bh",
            statistic="gtest",
            reference_beta=10,
            recent_beta=10,
        )
        with pytest.raises(InferenceError):
            Tends().apply_drift_adaptation(report)
