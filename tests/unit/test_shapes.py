"""Shape-claim machinery (paper-vs-measured comparison helpers)."""

import pytest

from repro.baselines.base import TendsInferrer
from repro.evaluation.harness import (
    ExperimentResult,
    ExperimentSpec,
    MethodResult,
    MethodSpec,
    SweepPoint,
)
from repro.evaluation.metrics import EdgeMetrics
from repro.evaluation.shapes import (
    FIGURE_SHAPES,
    best_method,
    check_figure_shapes,
    fastest_method,
    insensitive,
    trend,
)
from repro.graphs.generators.random_graphs import erdos_renyi_digraph


def _synthetic_result(
    experiment_id: str,
    f_by_method: dict[str, list[float]],
    runtime_by_method: dict[str, list[float]] | None = None,
    values: list[float] | None = None,
) -> ExperimentResult:
    """Hand-build an ExperimentResult with prescribed series."""
    n_points = len(next(iter(f_by_method.values())))
    values = values or list(range(n_points))
    points = tuple(
        SweepPoint(
            label=f"x={value}",
            value=value,
            graph_factory=lambda seed: erdos_renyi_digraph(5, 0.3, seed=seed),
        )
        for value in values
    )
    methods = tuple(
        MethodSpec(name, lambda ctx: TendsInferrer()) for name in f_by_method
    )
    spec = ExperimentSpec(
        experiment_id=experiment_id,
        title="synthetic",
        x_label="x",
        points=points,
        methods=methods,
    )
    results = []
    for index, point in enumerate(points):
        for name, series in f_by_method.items():
            f = series[index]
            tp = int(round(100 * f))
            runtime = (
                runtime_by_method[name][index] if runtime_by_method else 1.0
            )
            # EdgeMetrics with precision == recall == f.
            metrics = EdgeMetrics(tp, 100 - tp, 100 - tp)
            results.append(
                MethodResult(
                    experiment_id=experiment_id,
                    point_label=point.label,
                    point_value=point.value,
                    method=name,
                    replicate=0,
                    metrics=metrics,
                    runtime_seconds=runtime,
                )
            )
    return ExperimentResult(spec=spec, results=tuple(results))


class TestHelpers:
    def test_insensitive(self):
        assert insensitive([0.5, 0.55, 0.6], spread=0.15)
        assert not insensitive([0.2, 0.6], spread=0.15)
        assert insensitive([], spread=0.1)

    def test_trend_direction(self):
        assert trend([0.2, 0.3, 0.4, 0.5]) > 0
        assert trend([0.5, 0.4, 0.3, 0.2]) < 0
        assert trend([0.4]) == 0.0

    def test_best_and_fastest(self):
        result = _synthetic_result(
            "custom",
            {"A": [0.8, 0.8], "B": [0.5, 0.5]},
            {"A": [2.0, 2.0], "B": [0.5, 0.5]},
        )
        assert best_method(result) == "A"
        assert fastest_method(result) == "B"


class TestRegistry:
    def test_all_figures_have_claims(self):
        assert set(FIGURE_SHAPES) == {f"fig{i}" for i in range(1, 12)}
        assert all(len(checks) >= 2 for checks in FIGURE_SHAPES.values())

    def test_unknown_experiment_has_no_claims(self):
        result = _synthetic_result("custom", {"A": [0.5, 0.5]})
        assert check_figure_shapes(result) == []


class TestClaimEvaluation:
    def test_fig1_pass_case(self):
        result = _synthetic_result(
            "fig1",
            {
                "TENDS": [0.66, 0.67, 0.66, 0.65, 0.68],
                "NetRate": [0.75, 0.66, 0.60, 0.58, 0.55],
                "MulTree": [0.66, 0.62, 0.60, 0.55, 0.54],
                "LIFT": [0.11, 0.10, 0.09, 0.08, 0.07],
            },
            {
                "TENDS": [0.1] * 5,
                "NetRate": [0.3] * 5,
                "MulTree": [1.0] * 5,
                "LIFT": [0.01] * 5,
            },
        )
        outcomes = check_figure_shapes(result)
        assert outcomes, "fig1 must have claims"
        assert all(outcome.passed for outcome in outcomes), [
            o.as_row() for o in outcomes if not o.passed
        ]

    def test_fig1_fail_case_detected(self):
        result = _synthetic_result(
            "fig1",
            {
                "TENDS": [0.2, 0.3, 0.5, 0.6, 0.9],  # not insensitive, not best
                "NetRate": [0.9, 0.9, 0.9, 0.9, 0.9],
                "MulTree": [0.5] * 5,
                "LIFT": [0.1] * 5,
            },
            {
                "TENDS": [5.0] * 5,
                "NetRate": [0.3] * 5,
                "MulTree": [1.0] * 5,
                "LIFT": [0.01] * 5,
            },
        )
        outcomes = check_figure_shapes(result)
        assert any(not outcome.passed for outcome in outcomes)

    def test_fig10_peak_claim(self):
        result = _synthetic_result(
            "fig10",
            {
                "TENDS(IMI)": [0.40, 0.50, 0.57, 0.60, 0.55, 0.45],
                "TENDS(MI)": [0.35, 0.45, 0.50, 0.52, 0.50, 0.40],
            },
            values=[0.4, 0.6, 0.8, 1.0, 1.5, 2.0],
        )
        outcomes = check_figure_shapes(result)
        assert all(outcome.passed for outcome in outcomes), [
            o.as_row() for o in outcomes if not o.passed
        ]

    def test_outcome_rows(self):
        result = _synthetic_result(
            "fig10",
            {
                "TENDS(IMI)": [0.5, 0.6, 0.4],
                "TENDS(MI)": [0.4, 0.5, 0.3],
            },
            values=[0.6, 1.0, 2.0],
        )
        rows = [outcome.as_row() for outcome in check_figure_shapes(result)]
        assert all(row["verdict"] in ("PASS", "FAIL") for row in rows)
        assert all(row["detail"] for row in rows)
