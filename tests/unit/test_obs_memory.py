"""Memory attribution: tracemalloc deltas, nesting, RSS readers, null path."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.tends import Tends
from repro.obs.memory import (
    NULL_MEMORY,
    MemoryTracker,
    NullMemoryTracker,
    read_peak_rss_bytes,
    read_rss_bytes,
)
from repro.obs.trace import Tracer
from repro.simulation.statuses import StatusMatrix

MB = 1 << 20


class TestRssReaders:
    def test_current_rss_is_plausible(self):
        rss = read_rss_bytes()
        assert rss is None or rss > MB

    def test_peak_rss_at_least_current(self):
        peak = read_peak_rss_bytes()
        assert peak is not None and peak > MB
        current = read_rss_bytes()
        if current is not None:
            assert peak >= current


class TestMemoryTracker:
    def test_attributes_allocation_to_stage(self):
        tracker = MemoryTracker()
        with tracker.activate():
            with tracker.measure("alloc"):
                buffer = bytearray(4 * MB)
        stats = tracker.stages()["alloc"]
        assert stats["alloc_bytes"] >= 4 * MB
        assert stats["peak_alloc_bytes"] >= 4 * MB
        assert stats["peak_rss_bytes"] is None or stats["peak_rss_bytes"] > 0
        del buffer

    def test_freed_memory_nets_out_but_keeps_peak(self):
        tracker = MemoryTracker()
        with tracker.activate():
            with tracker.measure("transient"):
                buffer = bytearray(4 * MB)
                del buffer
        stats = tracker.stages()["transient"]
        assert stats["alloc_bytes"] < MB  # netted out
        assert stats["peak_alloc_bytes"] >= 4 * MB  # high-water kept

    def test_nested_peaks_propagate_to_parent(self):
        tracker = MemoryTracker()
        with tracker.activate():
            with tracker.measure("total"):
                with tracker.measure("inner"):
                    buffer = bytearray(4 * MB)
                    del buffer
        stages = tracker.stages()
        assert stages["inner"]["peak_alloc_bytes"] >= 4 * MB
        # reset_peak wiped the interpreter high-water; the tracker must
        # still credit the inner block's peak to the enclosing measure.
        assert (
            stages["total"]["peak_alloc_bytes"]
            >= stages["inner"]["peak_alloc_bytes"]
        )

    def test_reentered_stage_sums_alloc_keeps_max_peak(self):
        tracker = MemoryTracker()
        with tracker.activate():
            with tracker.measure("stage"):
                first = bytearray(2 * MB)
            with tracker.measure("stage"):
                second = bytearray(3 * MB)
        stats = tracker.stages()["stage"]
        assert stats["alloc_bytes"] >= 5 * MB
        assert stats["peak_alloc_bytes"] >= 3 * MB
        del first, second

    def test_measure_mirrors_stats_onto_span(self):
        tracker = MemoryTracker()
        tracer = Tracer()
        with tracker.activate():
            with tracer.span("stage") as span, tracker.measure("stage", span):
                buffer = bytearray(2 * MB)
        attrs = tracer.finished()[0].attrs
        assert attrs["alloc_bytes"] >= 2 * MB
        assert attrs["peak_alloc_bytes"] >= 2 * MB
        del buffer

    def test_activate_respects_foreign_tracing(self):
        tracemalloc.start()
        try:
            tracker = MemoryTracker()
            with tracker.activate():
                assert tracemalloc.is_tracing()
            # Never stops a tracer it did not start.
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_measure_without_tracing_still_reports_rss(self):
        tracker = MemoryTracker()
        with tracker.measure("cold"):
            pass
        stats = tracker.stages()["cold"]
        assert stats["alloc_bytes"] == 0
        assert stats["peak_alloc_bytes"] == 0


class TestNullMemoryTracker:
    def test_null_path_records_nothing(self):
        null = NullMemoryTracker()
        assert null.enabled is False
        with null.activate():
            with null.measure("stage"):
                pass
        assert null.stages() == {}
        assert NULL_MEMORY.stages() == {}

    def test_null_measure_is_shared_context(self):
        assert NULL_MEMORY.measure("a") is NULL_MEMORY.measure("b")


class TestPureObserver:
    def test_fit_bit_identical_with_memory_on_and_off(self):
        rng = np.random.default_rng(11)
        statuses = StatusMatrix(
            rng.integers(0, 2, size=(80, 12)).astype(np.uint8)
        )
        baseline = Tends().fit(statuses)
        measured = Tends(memory=True).fit(statuses)
        assert baseline.parent_sets == measured.parent_sets
        assert baseline.threshold == measured.threshold
        assert np.array_equal(baseline.mi_matrix, measured.mi_matrix)
        assert baseline.graph.edge_set() == measured.graph.edge_set()
        assert baseline.telemetry is None
        stages = measured.telemetry.memory
        assert {"imi", "threshold", "search", "total"} <= set(stages)

    def test_memory_without_trace_keeps_spans_empty(self):
        rng = np.random.default_rng(12)
        statuses = StatusMatrix(
            rng.integers(0, 2, size=(40, 8)).astype(np.uint8)
        )
        result = Tends(memory=True).fit(statuses)
        assert result.telemetry.spans == ()
        assert result.telemetry.memory
