"""Infection MI (Eq. 24-25) and traditional MI."""

import math

import numpy as np
import pytest

from repro.core.imi import infection_mi_matrix, pointwise_mi_terms, traditional_mi_matrix
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix


def _perfectly_correlated(beta: int = 20) -> StatusMatrix:
    column = np.array([i % 2 for i in range(beta)], dtype=np.uint8)
    return StatusMatrix(np.stack([column, column], axis=1))


def _perfectly_anticorrelated(beta: int = 20) -> StatusMatrix:
    column = np.array([i % 2 for i in range(beta)], dtype=np.uint8)
    return StatusMatrix(np.stack([column, 1 - column], axis=1))


def _independent(beta: int = 4) -> StatusMatrix:
    # All four joint outcomes equally often: exactly independent.
    return StatusMatrix([[0, 0], [0, 1], [1, 0], [1, 1]] * (beta // 4))


class TestPointwiseTerms:
    def test_keys(self, tiny_statuses):
        terms = pointwise_mi_terms(tiny_statuses)
        assert set(terms) == {"11", "10", "01", "00"}

    def test_zero_processes_rejected(self):
        with pytest.raises(DataError):
            pointwise_mi_terms(StatusMatrix(np.zeros((0, 3))))

    def test_independent_terms_are_zero(self):
        terms = pointwise_mi_terms(_independent(8))
        for matrix in terms.values():
            assert matrix[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_correlated_cross_terms_negative(self):
        terms = pointwise_mi_terms(_perfectly_correlated())
        # (1,0) never observed -> 0; but for near-perfect correlation with
        # one disagreement the cross term goes negative:
        data = [[1, 1]] * 10 + [[0, 0]] * 9 + [[1, 0]]
        terms = pointwise_mi_terms(StatusMatrix(data))
        assert terms["10"][0, 1] < 0

    def test_degenerate_marginals_contribute_zero(self):
        statuses = StatusMatrix([[1, 0], [1, 1]])  # column 0 constant
        terms = pointwise_mi_terms(statuses)
        for matrix in terms.values():
            assert np.isfinite(matrix).all()


class TestInfectionMI:
    def test_symmetry(self, small_observations):
        imi = infection_mi_matrix(small_observations.statuses)
        assert np.allclose(imi, imi.T)

    def test_diagonal_zero(self, small_observations):
        imi = infection_mi_matrix(small_observations.statuses)
        assert np.allclose(np.diag(imi), 0.0)

    def test_perfect_correlation_is_positive(self):
        imi = infection_mi_matrix(_perfectly_correlated())
        assert imi[0, 1] == pytest.approx(1.0)

    def test_perfect_anticorrelation_is_negative(self):
        imi = infection_mi_matrix(_perfectly_anticorrelated())
        assert imi[0, 1] == pytest.approx(-1.0)

    def test_independence_is_zero(self):
        imi = infection_mi_matrix(_independent(8))
        assert imi[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_distinguishes_sign_where_mi_cannot(self):
        imi_pos = infection_mi_matrix(_perfectly_correlated())[0, 1]
        imi_neg = infection_mi_matrix(_perfectly_anticorrelated())[0, 1]
        mi_pos = traditional_mi_matrix(_perfectly_correlated())[0, 1]
        mi_neg = traditional_mi_matrix(_perfectly_anticorrelated())[0, 1]
        assert mi_pos == pytest.approx(mi_neg)  # MI blind to direction...
        assert imi_pos > 0 > imi_neg  # ...IMI is not (the paper's point)


class TestTraditionalMI:
    def test_non_negative(self, small_observations):
        mi = traditional_mi_matrix(small_observations.statuses)
        assert mi.min() >= 0.0

    def test_perfect_dependence_is_one_bit(self):
        mi = traditional_mi_matrix(_perfectly_correlated())
        assert mi[0, 1] == pytest.approx(1.0)

    def test_diagonal_zero(self, small_observations):
        mi = traditional_mi_matrix(small_observations.statuses)
        assert np.allclose(np.diag(mi), 0.0)
