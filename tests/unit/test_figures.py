"""Figure registry: every paper figure has a well-formed spec."""

import pytest

from repro.evaluation.figures import (
    FIGURES,
    LFR_TABLE2,
    figure_spec,
    list_figures,
    table2_rows,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_all_eleven_figures_present(self):
        assert list_figures() == [f"fig{i}" for i in range(1, 12)]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            figure_spec("fig99")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            figure_spec("fig1", scale="gigantic")


class TestSpecs:
    @pytest.mark.parametrize("figure_id", list(FIGURES))
    def test_spec_builds(self, figure_id):
        spec = figure_spec(figure_id, scale="quick")
        assert spec.experiment_id == figure_id
        assert len(spec.points) >= 3
        assert len(spec.methods) >= 2

    def test_fig1_sweeps_size(self):
        spec = figure_spec("fig1")
        assert [p.value for p in spec.points] == [100, 150, 200, 250, 300]

    def test_fig2_sweeps_degree(self):
        spec = figure_spec("fig2")
        assert [p.value for p in spec.points] == [2, 3, 4, 5, 6]

    def test_fig3_sweeps_tau(self):
        spec = figure_spec("fig3")
        assert [p.value for p in spec.points] == [1.0, 1.5, 2.0, 2.5, 3.0]

    @pytest.mark.parametrize("figure_id", ["fig4", "fig5"])
    def test_alpha_sweeps(self, figure_id):
        spec = figure_spec(figure_id)
        assert [p.value for p in spec.points] == [0.05, 0.10, 0.15, 0.20, 0.25]
        assert all(p.alpha == p.value for p in spec.points)

    @pytest.mark.parametrize("figure_id", ["fig6", "fig7"])
    def test_mu_sweeps(self, figure_id):
        spec = figure_spec(figure_id)
        assert all(p.mu == p.value for p in spec.points)

    @pytest.mark.parametrize("figure_id", ["fig8", "fig9"])
    def test_beta_sweeps(self, figure_id):
        spec = figure_spec(figure_id)
        assert all(p.beta == p.value for p in spec.points)
        quick = figure_spec(figure_id, scale="quick")
        assert len(quick.points) == 3

    @pytest.mark.parametrize("figure_id", ["fig10", "fig11"])
    def test_pruning_sweeps_have_two_tends_variants(self, figure_id):
        spec = figure_spec(figure_id)
        names = [m.name for m in spec.methods]
        assert names == ["TENDS(IMI)", "TENDS(MI)"]

    def test_paper_roster_on_comparison_figures(self):
        spec = figure_spec("fig1")
        assert [m.name for m in spec.methods] == [
            "TENDS",
            "NetRate",
            "MulTree",
            "LIFT",
        ]

    def test_quick_scale_reduces_beta(self):
        full = figure_spec("fig1")
        quick = figure_spec("fig1", scale="quick")
        assert all(p.beta == 150 for p in full.points)
        assert all(p.beta == 60 for p in quick.points)

    def test_real_network_factories_are_seed_pinned(self):
        spec = figure_spec("fig4")
        graph_a = spec.points[0].graph_factory(123)
        graph_b = spec.points[1].graph_factory(456)
        assert graph_a.edge_set() == graph_b.edge_set()


class TestTable2:
    def test_fifteen_graphs(self):
        assert len(LFR_TABLE2) == 15
        assert list(LFR_TABLE2) == [f"LFR{i}" for i in range(1, 16)]

    def test_parameters_match_paper(self):
        assert [LFR_TABLE2[f"LFR{i}"].n for i in range(1, 6)] == [
            100,
            150,
            200,
            250,
            300,
        ]
        assert [LFR_TABLE2[f"LFR{i}"].avg_degree for i in range(6, 11)] == [
            2,
            3,
            4,
            5,
            6,
        ]
        assert [LFR_TABLE2[f"LFR{i}"].tau for i in range(11, 16)] == [
            1.0,
            1.5,
            2.0,
            2.5,
            3.0,
        ]

    def test_rows_regenerate(self):
        rows = table2_rows(seed=0)
        assert len(rows) == 15
        for row in rows:
            assert row["k_realised"] == pytest.approx(row["k_requested"], rel=0.02)
