"""ASCII table rendering."""

from repro.baselines.base import TendsInferrer
from repro.evaluation.harness import (
    ExperimentSpec,
    MethodSpec,
    SweepPoint,
    run_experiment,
)
from repro.evaluation.reporting import (
    format_result_table,
    format_rows,
    format_series,
    render_markdown_report,
)
from repro.graphs.generators.random_graphs import erdos_renyi_digraph


def _result():
    spec = ExperimentSpec(
        experiment_id="demo",
        title="Demo sweep",
        x_label="n",
        points=(
            SweepPoint("n=10", 10, lambda s: erdos_renyi_digraph(10, 0.2, seed=s), beta=30),
        ),
        methods=(MethodSpec("TENDS", lambda ctx: TendsInferrer()),),
    )
    return run_experiment(spec, seed=0)


class TestFormatRows:
    def test_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_alignment_and_floats(self):
        text = format_rows(
            [{"a": 1, "b": 0.123456}, {"a": 22, "b": 7.0}], float_digits=2
        )
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "0.12" in text
        assert len({len(line) for line in lines[:2]}) == 1  # header == separator

    def test_column_selection(self):
        text = format_rows([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_key_blank(self):
        text = format_rows([{"a": 1}], columns=["a", "zz"])
        assert "zz" in text


class TestResultFormatting:
    def test_result_table_mentions_title(self):
        text = format_result_table(_result())
        assert "Demo sweep" in text
        assert "TENDS" in text
        assert "f_score" in text

    def test_series_layout(self):
        text = format_series(_result())
        assert text.splitlines()[0].startswith("points:")
        assert any(line.startswith("F ") for line in text.splitlines())
        assert any(line.startswith("t ") for line in text.splitlines())


class TestMarkdownReport:
    def test_contains_tables_per_experiment(self):
        text = render_markdown_report([_result()])
        assert text.startswith("# Experiment report")
        assert "## demo — Demo sweep" in text
        assert "**F-score**" in text
        assert "**runtime (s)**" in text
        assert "| TENDS |" in text

    def test_no_shape_section_for_custom_experiments(self):
        text = render_markdown_report([_result()])
        assert "paper-shape claims" not in text

    def test_multiple_results_stack(self):
        text = render_markdown_report([_result(), _result()])
        assert text.count("## demo") == 2

    def test_markdown_table_well_formed(self):
        text = render_markdown_report([_result()])
        table_lines = [l for l in text.splitlines() if l.startswith("|")]
        column_counts = {line.count("|") for line in table_lines}
        assert len(column_counts) == 1  # consistent column count
