"""perf-check: timing profiles, comparisons, report formatting."""

import json
import math

import pytest

from repro.exceptions import DataError
from repro.obs.perfcheck import (
    PerfCheckReport,
    TimingComparison,
    compare_profiles,
    format_report,
    load_timing_profile,
    timing_profile,
)


def _fit_manifest(stages):
    return {
        "format": "repro.run_manifest",
        "version": 1,
        "kind": "tends.fit",
        "created_unix": 0.0,
        "config": {},
        "seeds": {},
        "environment": {},
        "git": None,
        "stages": dict(stages),
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "result": {},
        "total_seconds": float(sum(stages.values())),
    }


def _archive(rows):
    return {
        "format": "repro.experiment_result",
        "results": [
            {"method": m, "runtime_seconds": s, "error": e} for m, s, e in rows
        ],
    }


class TestTimingProfile:
    def test_fit_manifest_stages_namespaced(self):
        profile = timing_profile(_fit_manifest({"imi": 1.0, "search": 2.0}))
        assert profile == {"total": 3.0, "stage:imi": 1.0, "stage:search": 2.0}

    def test_experiment_manifest_keys_kept_verbatim(self):
        profile = timing_profile(_fit_manifest({"method:TENDS": 4.0}))
        assert profile == {"total": 4.0, "method:TENDS": 4.0}

    def test_archive_means_exclude_failed_cells(self):
        document = _archive([
            ("TENDS", 1.0, None),
            ("TENDS", 3.0, None),
            ("NetRate", 5.0, None),
            ("NetRate", 99.0, "boom"),  # counts toward total, not the mean
        ])
        profile = timing_profile(document)
        assert profile["total"] == 108.0
        assert profile["method:TENDS"] == 2.0
        assert profile["method:NetRate"] == 5.0

    def test_unknown_format_rejected(self):
        with pytest.raises(DataError, match="cannot build a timing profile"):
            timing_profile({"format": "mystery"})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps(_fit_manifest({"imi": 1.0})))
        assert load_timing_profile(path)["stage:imi"] == 1.0

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(DataError, match="JSON object"):
            load_timing_profile(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="cannot read"):
            load_timing_profile(tmp_path / "absent.json")


class TestTimingComparison:
    def test_ratio_and_verdict(self):
        c = TimingComparison("total", 2.0, 3.0, max_slowdown=1.5)
        assert c.ratio == 1.5
        assert c.ok

    def test_zero_baseline_with_growth_is_infinite(self):
        c = TimingComparison("total", 0.0, 1.0, max_slowdown=10.0)
        assert math.isinf(c.ratio)
        assert not c.ok

    def test_zero_both_sides_is_flat(self):
        c = TimingComparison("total", 0.0, 0.0, max_slowdown=1.5)
        assert c.ratio == 1.0
        assert c.ok


class TestCompareProfiles:
    def test_identical_profiles_pass(self):
        profile = {"total": 3.0, "stage:imi": 1.0}
        report = compare_profiles(profile, profile)
        assert report.ok
        assert {c.entry for c in report.comparisons} == {"total", "stage:imi"}

    def test_regression_detected(self):
        report = compare_profiles(
            {"total": 4.0}, {"total": 2.0}, max_slowdown=1.5
        )
        assert not report.ok
        assert [c.entry for c in report.regressions()] == ["total"]

    def test_speedup_passes(self):
        report = compare_profiles({"total": 1.0}, {"total": 2.0})
        assert report.ok

    def test_noise_floor_skips(self):
        report = compare_profiles(
            {"total": 5.0, "stage:imi": 0.001},
            {"total": 5.0, "stage:imi": 0.0001},
            min_seconds=0.01,
        )
        assert report.ok
        assert any("noise floor" in s for s in report.skipped)
        assert all(c.entry != "stage:imi" for c in report.comparisons)

    def test_one_sided_entries_noted_not_compared(self):
        report = compare_profiles(
            {"total": 1.0, "stage:new": 1.0}, {"total": 1.0}
        )
        assert any("present on one side only" in s for s in report.skipped)

    def test_entry_budget_overrides_default(self):
        current, baseline = {"stage:search": 2.6}, {"stage:search": 2.0}
        assert not compare_profiles(current, baseline, max_slowdown=1.2).ok
        assert compare_profiles(
            current, baseline, max_slowdown=1.2,
            entry_budgets={"stage:search": 1.4},
        ).ok

    def test_disjoint_profiles_raise(self):
        with pytest.raises(DataError, match="no comparable timing entries"):
            compare_profiles({"a": 1.0}, {"b": 1.0})

    def test_all_noise_floor_does_not_raise(self):
        report = compare_profiles({"a": 0.001}, {"a": 0.002})
        assert report.ok
        assert not report.comparisons

    def test_invalid_slowdown_rejected(self):
        with pytest.raises(DataError, match="max_slowdown"):
            compare_profiles({"a": 1.0}, {"a": 1.0}, max_slowdown=0)


class TestFormatReport:
    def test_pass_verdict(self):
        report = compare_profiles({"total": 1.0}, {"total": 1.0})
        text = format_report(report)
        assert "perf-check: PASS" in text
        assert "total" in text

    def test_fail_verdict_counts_regressions(self):
        report = compare_profiles(
            {"total": 9.0, "stage:imi": 9.0},
            {"total": 1.0, "stage:imi": 1.0},
        )
        text = format_report(report)
        assert "perf-check: FAIL (2 regression(s))" in text
        assert "REGRESSION" in text

    def test_skips_listed(self):
        report = PerfCheckReport(comparisons=(), skipped=("x: noise floor",))
        assert "skipped: x: noise floor" in format_report(report)

    def test_infinite_ratio_rendered(self):
        report = compare_profiles({"total": 1.0}, {"total": 0.0})
        assert " inf " in format_report(report)
