"""Unit tests for :class:`repro.core.stats.WindowedStats`.

The windowed ring exists so drift detection can weigh a recent slice of
the stream against everything before it without re-reading history.
The load-bearing contract: all derived views are exact integer count
algebra — ``total`` is bit-identical to cumulative
:class:`SufficientStats` on the concatenation, ``recent + reference``
reassembles ``total`` exactly, and ``decay=1.0`` short-circuits to the
integer path (turning decay on is strictly opt-in).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stats import SufficientStats, WindowedStats
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix


def _random_statuses(beta, n, seed, mask_fraction=0.0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, size=(beta, n), dtype=np.uint8)
    mask = None
    if mask_fraction:
        mask = rng.random((beta, n)) >= mask_fraction
    return StatusMatrix(data, mask)


def _chunks(seed, count=4, beta=15, n=6, mask_fraction=0.0):
    return [
        _random_statuses(beta, n, seed=seed + i, mask_fraction=mask_fraction)
        for i in range(count)
    ]


class TestWindowedPush:
    def test_push_rolls_windows_at_boundaries(self):
        w = WindowedStats.empty(6, window_cascades=15)
        for i, chunk in enumerate(_chunks(seed=10)):
            w = w.pushed(chunk)
            assert w.n_windows == i + 1
        assert w.beta == 60

    def test_one_push_can_fill_several_windows(self):
        w = WindowedStats.empty(6, window_cascades=10)
        w = w.pushed(_random_statuses(35, 6, seed=11))
        assert w.n_windows == 4
        assert [block.beta for block in w.windows] == [10, 10, 10, 5]

    def test_empty_batch_is_a_no_op(self):
        w = WindowedStats.empty(6, window_cascades=10)
        w = w.pushed(_random_statuses(10, 6, seed=12))
        assert w.pushed(_random_statuses(0, 6, seed=13)) is w

    @pytest.mark.parametrize("mask_fraction", [0.0, 0.25])
    def test_total_bit_identical_to_cumulative(self, mask_fraction):
        chunks = _chunks(seed=20, mask_fraction=mask_fraction)
        w = WindowedStats.empty(6, window_cascades=15)
        for chunk in chunks:
            w = w.pushed(chunk)
        concat = chunks[0]
        for chunk in chunks[1:]:
            concat = concat.append(chunk)
        cumulative = SufficientStats.from_statuses(concat)
        assert w.total().equals(cumulative)
        assert w.total().checksum() == cumulative.checksum()

    def test_eviction_beyond_max_windows(self):
        chunks = _chunks(seed=30, count=5)
        w = WindowedStats.empty(6, window_cascades=15, max_windows=3)
        for chunk in chunks:
            w = w.pushed(chunk)
        assert w.n_windows == 3
        assert w.evicted_windows == 2
        assert w.evicted_beta == 30
        # Retained windows are the newest three.
        tail = chunks[2].append(chunks[3]).append(chunks[4])
        assert w.total().equals(SufficientStats.from_statuses(tail))


class TestRecentReferenceSplit:
    def _ring(self, chunks):
        w = WindowedStats.empty(6, window_cascades=15)
        for chunk in chunks:
            w = w.pushed(chunk)
        return w

    def test_recent_plus_reference_is_total(self):
        w = self._ring(_chunks(seed=40))
        recent = w.recent(1)
        reference = w.reference(1)
        assert recent.beta == 15
        assert reference.beta == 45
        assert recent.merged(reference).equals(w.total())

    def test_reference_is_exact_recount_of_head(self):
        chunks = _chunks(seed=50)
        w = self._ring(chunks)
        head = chunks[0].append(chunks[1]).append(chunks[2])
        assert w.reference(1).equals(SufficientStats.from_statuses(head))

    def test_recent_spans_multiple_windows(self):
        chunks = _chunks(seed=55)
        w = self._ring(chunks)
        tail = chunks[2].append(chunks[3])
        assert w.recent(2).equals(SufficientStats.from_statuses(tail))


class TestDecay:
    def test_decay_one_is_exact_total(self):
        w = WindowedStats.empty(6, window_cascades=15, decay=1.0)
        for chunk in _chunks(seed=60):
            w = w.pushed(chunk)
        assert w.decayed().equals(w.total())

    def test_decay_downweights_older_windows(self):
        chunks = _chunks(seed=70, count=2)
        w = WindowedStats.empty(6, window_cascades=15, decay=0.5)
        for chunk in chunks:
            w = w.pushed(chunk)
        decayed = w.decayed()
        newest = SufficientStats.from_statuses(chunks[1])
        oldest = SufficientStats.from_statuses(chunks[0])
        expected = newest.counts["11"] + 0.5 * oldest.counts["11"]
        assert np.allclose(decayed.counts["11"], expected)

    def test_invalid_decay_rejected(self):
        with pytest.raises(DataError):
            WindowedStats.empty(6, decay=0.0)
        with pytest.raises(DataError):
            WindowedStats.empty(6, decay=1.5)


class TestValidation:
    def test_incompatible_push_rejected(self):
        w = WindowedStats.empty(6).pushed(_random_statuses(10, 6, seed=80))
        with pytest.raises(DataError):
            w.pushed(_random_statuses(10, 7, seed=81))

    def test_out_of_range_views_rejected(self):
        w = WindowedStats.empty(6, window_cascades=10)
        w = w.pushed(_random_statuses(10, 6, seed=82))
        with pytest.raises(DataError):
            w.recent(2)
        with pytest.raises(DataError):
            w.reference(1)  # needs at least two windows
