"""PATH baseline and the infection-path extraction feeding it."""

import pytest

from repro.baselines.base import Observations
from repro.baselines.path import Path
from repro.exceptions import DataError
from repro.simulation.cascades import Cascade, CascadeSet
from repro.simulation.statuses import StatusMatrix


def _attributed_cascade() -> Cascade:
    """0 -> 1 -> 2, plus seed 3 -> 4."""
    return Cascade(
        {0: 0.0, 1: 1.0, 2: 2.0, 3: 0.0, 4: 1.0},
        infectors={1: 0, 2: 1, 4: 3},
    )


class TestInfectionPaths:
    def test_length_two_paths_are_attributed_edges(self):
        paths = _attributed_cascade().infection_paths(2)
        assert set(paths) == {(0, 1), (1, 2), (3, 4)}

    def test_length_three_paths(self):
        paths = _attributed_cascade().infection_paths(3)
        assert paths == [(0, 1, 2)]

    def test_too_long_paths_are_empty(self):
        assert _attributed_cascade().infection_paths(4) == []

    def test_requires_attribution(self):
        with pytest.raises(DataError):
            Cascade({0: 0.0, 1: 1.0}).infection_paths(2)

    def test_length_validation(self):
        with pytest.raises(DataError):
            _attributed_cascade().infection_paths(1)

    def test_invalid_attribution_rejected(self):
        with pytest.raises(DataError):
            Cascade({0: 0.0, 1: 1.0}, infectors={1: 5})
        with pytest.raises(DataError):
            Cascade({0: 0.0, 1: 1.0}, infectors={0: 1})  # parent not earlier


def _observations(beta: int = 20) -> Observations:
    cascades = CascadeSet(5, [_attributed_cascade() for _ in range(beta)])
    return Observations(
        n_nodes=5, statuses=cascades.to_status_matrix(), cascades=cascades
    )


class TestPathInferrer:
    def test_recovers_chain_edges(self):
        output = Path(n_edges=3, path_length=2).infer(_observations())
        assert output.graph.edge_set() == {(0, 1), (1, 2), (3, 4)}

    def test_length_three_restricts_to_long_chains(self):
        output = Path(n_edges=10, path_length=3).infer(_observations())
        # Only the 0->1->2 chain is 3 long; its adjacent pairs win.
        assert output.graph.edge_set() == {(0, 1), (1, 2)}

    def test_budget_respected(self):
        output = Path(n_edges=1, path_length=2).infer(_observations())
        assert output.n_edges == 1

    def test_scores_are_vote_counts(self):
        output = Path(n_edges=3, path_length=2).infer(_observations(beta=7))
        assert all(score == 7.0 for score in output.edge_scores.values())

    def test_requires_cascades(self, tiny_statuses):
        with pytest.raises(DataError):
            Path(n_edges=1).infer(Observations.from_statuses(tiny_statuses))

    def test_requires_attribution(self):
        cascades = CascadeSet(3, [Cascade({0: 0.0, 1: 1.0})])
        obs = Observations(
            n_nodes=3, statuses=cascades.to_status_matrix(), cascades=cascades
        )
        with pytest.raises(DataError, match="attribution"):
            Path(n_edges=1).infer(obs)

    def test_simulated_observations_have_attribution(self, small_observations):
        obs = Observations.from_simulation(small_observations)
        output = Path(n_edges=10, path_length=2).infer(obs)
        # Every voted edge is a true edge: paths are ground truth.
        assert output.graph.edge_set() <= small_observations.graph.edge_set()

    @pytest.mark.parametrize("bad_length", [0, 1])
    def test_path_length_validation(self, bad_length):
        with pytest.raises(DataError):
            Path(n_edges=1, path_length=bad_length)
