"""Per-edge propagation probability sampling (paper §V-A)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.probabilities import (
    PROBABILITY_CEIL,
    PROBABILITY_FLOOR,
    constant_probabilities,
    gaussian_probabilities,
    uniform_probabilities,
)


class TestGaussian:
    def test_one_probability_per_edge(self, small_er_graph):
        probs = gaussian_probabilities(small_er_graph, mu=0.3, seed=0)
        assert set(probs) == small_er_graph.edge_set()

    def test_clipping(self, small_er_graph):
        probs = gaussian_probabilities(small_er_graph, mu=0.02, sigma=0.5, seed=0)
        values = np.array(list(probs.values()))
        assert values.min() >= PROBABILITY_FLOOR
        assert values.max() <= PROBABILITY_CEIL

    def test_paper_95_percent_band(self):
        # sigma = 0.05 must put >95% of draws within mu +/- 0.1 (paper §V-A).
        from repro.graphs.generators.random_graphs import erdos_renyi_digraph

        graph = erdos_renyi_digraph(60, 0.5, seed=1)
        probs = gaussian_probabilities(graph, mu=0.3, sigma=0.05, seed=2)
        values = np.array(list(probs.values()))
        in_band = np.mean((values >= 0.2) & (values <= 0.4))
        assert in_band > 0.95

    def test_deterministic(self, small_er_graph):
        a = gaussian_probabilities(small_er_graph, mu=0.3, seed=9)
        b = gaussian_probabilities(small_er_graph, mu=0.3, seed=9)
        assert a == b

    def test_zero_sigma_is_constant(self, small_er_graph):
        probs = gaussian_probabilities(small_er_graph, mu=0.3, sigma=0.0, seed=0)
        assert all(p == pytest.approx(0.3) for p in probs.values())

    @pytest.mark.parametrize("mu", [0.0, 1.0, -0.2])
    def test_invalid_mu(self, small_er_graph, mu):
        with pytest.raises(ConfigurationError):
            gaussian_probabilities(small_er_graph, mu=mu)


class TestConstant:
    def test_values(self, chain_graph):
        probs = constant_probabilities(chain_graph, 0.42)
        assert all(p == 0.42 for p in probs.values())
        assert len(probs) == chain_graph.n_edges

    def test_invalid(self, chain_graph):
        with pytest.raises(ConfigurationError):
            constant_probabilities(chain_graph, 1.0)


class TestUniform:
    def test_bounds(self, small_er_graph):
        probs = uniform_probabilities(small_er_graph, 0.2, 0.5, seed=0)
        values = np.array(list(probs.values()))
        assert values.min() >= 0.2
        assert values.max() <= 0.5

    def test_reversed_bounds_rejected(self, small_er_graph):
        with pytest.raises(ValueError):
            uniform_probabilities(small_er_graph, 0.5, 0.2)
