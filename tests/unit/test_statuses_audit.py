"""Observation audit + graceful degradation on degenerate status matrices.

The all-zero and all-one fixtures hit the paper's boundary cases head-on:
``N₁ = 0`` / ``N₂ = 0`` in the δ_i bound (Eq. 16–17) and zero-marginal
pairs in the IMI terms (Eq. 24–25).  The estimators must stay finite and
the audit must name every finding.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.imi import infection_mi_matrix, traditional_mi_matrix
from repro.core.scoring import delta_i, empty_set_score, size_bound
from repro.core.tends import Tends
from repro.exceptions import DataError, DataQualityWarning
from repro.simulation.statuses import (
    StatusAudit,
    StatusMatrix,
    validate_observations,
)


@pytest.fixture
def all_zero() -> StatusMatrix:
    """No diffusion ever spread: every N₂ marginal is zero."""
    return StatusMatrix(np.zeros((10, 4), dtype=np.int8))


@pytest.fixture
def all_one() -> StatusMatrix:
    """Every diffusion saturated: every N₁ marginal is zero."""
    return StatusMatrix(np.ones((10, 4), dtype=np.int8))


@pytest.fixture
def clean() -> StatusMatrix:
    """Every process partial, every node sometimes (not always) infected."""
    return StatusMatrix(
        [
            [1, 0, 1, 0],
            [0, 1, 1, 0],
            [1, 1, 0, 1],
            [0, 1, 0, 1],
        ]
    )


@pytest.fixture
def mixed_degenerate() -> StatusMatrix:
    """One empty process; nodes 1 and 3 never infected."""
    return StatusMatrix(
        [
            [0, 0, 0, 0],
            [1, 0, 1, 0],
            [0, 0, 1, 0],
            [1, 0, 1, 0],
        ]
    )


class TestAuditFindings:
    def test_clean_matrix_is_not_degenerate(self, clean):
        audit = validate_observations(clean, on_degenerate="ignore")
        assert isinstance(audit, StatusAudit)
        assert not audit.is_degenerate
        assert audit.findings() == []

    def test_all_zero_findings(self, all_zero):
        audit = validate_observations(all_zero, on_degenerate="ignore")
        assert audit.empty_processes == tuple(range(10))
        assert audit.never_infected_nodes == (0, 1, 2, 3)
        assert audit.saturated_processes == ()
        assert audit.always_infected_nodes == ()
        assert audit.is_degenerate

    def test_all_one_findings(self, all_one):
        audit = validate_observations(all_one, on_degenerate="ignore")
        assert audit.saturated_processes == tuple(range(10))
        assert audit.always_infected_nodes == (0, 1, 2, 3)
        assert audit.empty_processes == ()
        assert audit.is_degenerate

    def test_mixed_findings_name_each_case(self, mixed_degenerate):
        audit = validate_observations(mixed_degenerate, on_degenerate="ignore")
        assert audit.empty_processes == (0,)
        assert audit.saturated_processes == ()
        assert audit.never_infected_nodes == (1, 3)
        assert audit.always_infected_nodes == ()
        assert len(audit.findings()) == 2

    def test_findings_truncate_long_index_lists(self, all_zero):
        audit = validate_observations(all_zero, on_degenerate="ignore")
        finding = audit.findings()[0]
        assert finding.startswith("10 all-zero")
        assert ", ..." in finding


class TestAuditPolicies:
    def test_warn_emits_data_quality_warning(self, all_zero):
        with pytest.warns(DataQualityWarning, match="degenerate observations"):
            validate_observations(all_zero)

    def test_strict_raises_data_error(self, all_zero):
        with pytest.raises(DataError, match="never-infected"):
            validate_observations(all_zero, on_degenerate="strict")

    def test_ignore_is_silent(self, all_zero, recwarn):
        validate_observations(all_zero, on_degenerate="ignore")
        assert len(recwarn) == 0

    def test_unknown_policy_is_rejected(self, all_zero):
        with pytest.raises(DataError, match="on_degenerate"):
            validate_observations(all_zero, on_degenerate="explode")

    def test_clean_matrix_never_warns(self, clean, recwarn):
        validate_observations(clean)
        assert len(recwarn) == 0


class TestGracefulDegradationInEstimators:
    """Eq. 16–17 / 24–25 limits: finite everywhere on degenerate data."""

    @pytest.mark.parametrize("fixture", ["all_zero", "all_one"])
    def test_delta_and_bound_stay_finite(self, fixture, request):
        statuses = request.getfixturevalue(fixture)
        for child in range(statuses.n_nodes):
            delta = delta_i(statuses, child)
            assert math.isfinite(delta)
            assert math.isfinite(empty_set_score(statuses, child))
            assert math.isfinite(size_bound(statuses.n_nodes - 1, delta))

    @pytest.mark.parametrize("fixture", ["all_zero", "all_one"])
    def test_mi_matrices_stay_finite(self, fixture, request):
        statuses = request.getfixturevalue(fixture)
        for matrix in (
            infection_mi_matrix(statuses),
            traditional_mi_matrix(statuses),
        ):
            assert np.all(np.isfinite(matrix))

    @pytest.mark.parametrize("fixture", ["all_zero", "all_one"])
    def test_fit_warns_but_completes(self, fixture, request):
        statuses = request.getfixturevalue(fixture)
        with pytest.warns(DataQualityWarning):
            result = Tends().fit(statuses)
        # No pairwise signal — the only defensible topology is empty.
        assert result.n_edges == 0

    def test_fit_strict_audit_refuses_degenerate_data(self, all_zero):
        with pytest.raises(DataError, match="degenerate observations"):
            Tends(audit="strict").fit(all_zero)

    def test_fit_ignore_audit_is_silent(self, all_zero, recwarn):
        Tends(audit="ignore").fit(all_zero)
        assert not any(
            isinstance(w.message, DataQualityWarning) for w in recwarn.list
        )
