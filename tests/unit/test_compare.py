"""Structural truth-vs-inferred comparison."""

import pytest

from repro.analysis.compare import (
    compare_topologies,
    degree_correlation,
    per_node_metrics,
)
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph


class TestPerNodeMetrics:
    def test_perfect_recovery(self, chain_graph):
        rows = per_node_metrics(chain_graph, chain_graph)
        assert all(
            row.metrics.false_positives == 0 and row.metrics.false_negatives == 0
            for row in rows
        )

    def test_localises_errors(self, chain_graph):
        inferred = DiffusionGraph(5, [(0, 1), (1, 2), (0, 3)]).freeze()
        rows = {row.node: row for row in per_node_metrics(chain_graph, inferred)}
        assert rows[1].f_score == 1.0  # parent {0} recovered
        assert rows[3].metrics.false_positives == 1  # wrong parent 0
        assert rows[3].metrics.false_negatives == 1  # missing parent 2
        assert rows[4].metrics.false_negatives == 1  # nothing inferred

    def test_node_count_mismatch(self, chain_graph):
        with pytest.raises(DataError):
            per_node_metrics(chain_graph, DiffusionGraph(3))


class TestDegreeCorrelation:
    def test_identity_is_one(self, small_er_graph):
        assert degree_correlation(small_er_graph, small_er_graph) == pytest.approx(1.0)

    def test_empty_inferred_is_zero(self, small_er_graph):
        empty = DiffusionGraph(small_er_graph.n_nodes)
        assert degree_correlation(small_er_graph, empty) == 0.0

    def test_kind_selection(self, star_graph):
        reversed_star = star_graph.reverse()
        # Reversing a star anti-correlates in/out degrees with the original.
        assert degree_correlation(star_graph, reversed_star, kind="out") < 0
        assert degree_correlation(star_graph, star_graph, kind="in") == pytest.approx(1.0)

    def test_unknown_kind(self, star_graph):
        with pytest.raises(DataError):
            degree_correlation(star_graph, star_graph, kind="sideways")


class TestCompareTopologies:
    def test_perfect_report(self, small_er_graph):
        report = compare_topologies(small_er_graph, small_er_graph)
        assert report["f_score"] == 1.0
        assert report["undirected_f_score"] == 1.0
        assert report["exact_parent_set_fraction"] == 1.0
        assert report["hub_overlap"] == 1.0

    def test_reversed_edges_show_direction_gap(self, chain_graph):
        report = compare_topologies(chain_graph, chain_graph.reverse())
        assert report["f_score"] == 0.0
        assert report["undirected_f_score"] == 1.0

    def test_keys_stable(self, chain_graph):
        report = compare_topologies(chain_graph, chain_graph)
        assert set(report) == {
            "f_score",
            "precision",
            "recall",
            "undirected_f_score",
            "in_degree_correlation",
            "out_degree_correlation",
            "exact_parent_set_fraction",
            "hub_overlap",
        }

    def test_mismatched_nodes_rejected(self, chain_graph):
        with pytest.raises(DataError):
            compare_topologies(chain_graph, DiffusionGraph(2))
