"""Per-point method factories of the pruning-sweep figures."""

import numpy as np

from repro.baselines.base import Observations
from repro.evaluation.figures import figure_spec
from repro.evaluation.harness import MethodContext
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.simulation.engine import DiffusionSimulator


def _context(point):
    truth = erdos_renyi_digraph(20, 0.15, seed=0)
    observations = Observations.from_simulation(
        DiffusionSimulator(truth, seed=1).run(beta=40)
    )
    return MethodContext(truth=truth, observations=observations, point=point)


class TestPruningSweepFactories:
    def test_factories_read_point_value_as_scale(self):
        spec = figure_spec("fig10", scale="quick")
        point = spec.points[0]  # 0.4tau
        for method in spec.methods:
            inferrer = method.factory(_context(point))
            assert inferrer._estimator.config.threshold_scale == point.value

    def test_imi_and_mi_variants_configured(self):
        spec = figure_spec("fig11", scale="quick")
        context = _context(spec.points[3])
        kinds = {
            method.name: method.factory(context)._estimator.config.mi_kind
            for method in spec.methods
        }
        assert kinds == {"TENDS(IMI)": "infection", "TENDS(MI)": "traditional"}

    def test_missing_point_defaults_to_unit_scale(self):
        spec = figure_spec("fig10", scale="quick")
        context = _context(None)
        inferrer = spec.methods[0].factory(context)
        assert inferrer._estimator.config.threshold_scale == 1.0


class TestComparisonFigureFactories:
    def test_budgeted_methods_get_true_edge_count(self):
        spec = figure_spec("fig1", scale="quick")
        context = _context(spec.points[0])
        by_name = {m.name: m for m in spec.methods}
        multree = by_name["MulTree"].factory(context)
        lift = by_name["LIFT"].factory(context)
        assert multree.n_edges == context.true_edge_count
        assert lift.n_edges == context.true_edge_count

    def test_every_method_is_constructible(self):
        spec = figure_spec("fig1", scale="quick")
        context = _context(spec.points[0])
        for method in spec.methods:
            inferrer = method.factory(context)
            assert inferrer.name == method.name
