"""Missing-data-aware estimation: pairwise-complete counts, policies,
and the clean-data equality guarantee.

The load-bearing tests here are the golden-fixture equality ones: on
complete (mask-free) data, every ``missing=`` policy must reproduce the
frozen golden topology bit-for-bit — proving the mask-aware code paths
left the clean path untouched.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.config import TendsConfig
from repro.core.imi import infection_mi_matrix, pointwise_mi_terms
from repro.core.scoring import delta_i, family_counts
from repro.core.tends import Tends
from repro.exceptions import ConfigurationError, DataError
from repro.graphs import io as graph_io
from repro.robustness import missing_at_random
from repro.simulation import io as sim_io
from repro.simulation.statuses import StatusMatrix

DATA_DIR = Path(__file__).resolve().parent.parent / "data"


@pytest.fixture(scope="module")
def golden_statuses() -> StatusMatrix:
    return sim_io.read_statuses_csv(DATA_DIR / "golden_statuses.csv")


@pytest.fixture(scope="module")
def golden_edges():
    return graph_io.read_edge_list(DATA_DIR / "golden_edges.txt")


class TestCleanDataEquality:
    """Acceptance criterion: clean-data inference is identical under
    every missing policy's default path."""

    @pytest.mark.parametrize("policy", ["pairwise", "refuse", "zero-fill"])
    def test_golden_fixture_identical_under_all_policies(
        self, golden_statuses, golden_edges, policy
    ):
        result = Tends(missing=policy).fit(golden_statuses)
        frozen_threshold = float(
            (DATA_DIR / "golden_threshold.txt").read_text().strip()
        )
        assert result.graph.edge_set() == golden_edges.edge_set()
        assert result.threshold == pytest.approx(frozen_threshold, rel=1e-12, abs=0.0)

    def test_all_observed_mask_is_normalised_away(self, golden_statuses):
        mask = np.ones(golden_statuses.values.shape, dtype=bool)
        masked = StatusMatrix(golden_statuses.values, mask)
        assert masked.mask is None
        assert masked == golden_statuses

    def test_imi_identical_under_all_true_mask(self, golden_statuses):
        mask = np.ones(golden_statuses.values.shape, dtype=bool)
        masked = StatusMatrix(golden_statuses.values, mask)
        np.testing.assert_array_equal(
            infection_mi_matrix(masked), infection_mi_matrix(golden_statuses)
        )


class TestPairwiseCompleteImi:
    def test_uses_only_jointly_observed_rows(self):
        data = np.array(
            [[1, 1], [0, 0], [1, 0], [0, 1], [1, 1], [0, 0]], dtype=int
        )
        mask = np.ones_like(data, dtype=bool)
        mask[4, 0] = False  # row 4 missing for node 0
        mask[5, 1] = False  # row 5 missing for node 1
        masked = StatusMatrix(np.where(mask, data, 0), mask)
        # Pairwise-complete estimate == dropping the incomplete rows.
        complete = StatusMatrix(data[:4])
        terms_masked = pointwise_mi_terms(masked)
        terms_complete = pointwise_mi_terms(complete)
        for key in terms_masked:
            np.testing.assert_allclose(
                terms_masked[key][0, 1], terms_complete[key][0, 1], atol=1e-12
            )

    def test_fully_unobserved_pair_is_finite(self):
        data = np.zeros((5, 3), dtype=int)
        mask = np.ones_like(data, dtype=bool)
        mask[:, 2] = False
        masked = StatusMatrix(data, mask)
        mi = infection_mi_matrix(masked)
        assert np.isfinite(mi).all()
        assert mi[0, 2] == 0.0 and mi[2, 1] == 0.0

    def test_mask_perturbs_estimate_relative_to_zero_fill(self):
        rng = np.random.default_rng(8)
        clean = StatusMatrix((rng.random((120, 6)) < 0.4).astype(int))
        record = missing_at_random(clean, 0.3, seed=2)
        pairwise_mi = infection_mi_matrix(record.statuses)
        zero_fill_mi = infection_mi_matrix(record.statuses.filled(0))
        assert not np.allclose(pairwise_mi, zero_fill_mi)


class TestFamilyCompleteScoring:
    def test_family_counts_restrict_to_complete_rows(self):
        rng = np.random.default_rng(4)
        data = (rng.random((40, 4)) < 0.5).astype(int)
        mask = np.ones_like(data, dtype=bool)
        mask[10:20, 1] = False  # parent 1 unobserved on rows 10..19
        masked = StatusMatrix(np.where(mask, data, 0), mask)
        complete = StatusMatrix(np.vstack([data[:10], data[20:]]))
        got = family_counts(masked, child=0, parents=(1, 2))
        want = family_counts(complete, child=0, parents=(1, 2))
        assert got.beta == want.beta
        np.testing.assert_array_equal(got.totals, want.totals)
        np.testing.assert_array_equal(got.infected, want.infected)

    def test_delta_uses_child_observed_rows_only(self):
        rng = np.random.default_rng(4)
        data = (rng.random((40, 4)) < 0.5).astype(int)
        mask = np.ones_like(data, dtype=bool)
        mask[:15, 0] = False
        masked = StatusMatrix(np.where(mask, data, 0), mask)
        complete = StatusMatrix(data[15:])
        assert delta_i(masked, 0) == pytest.approx(delta_i(complete, 0))

    def test_never_observed_child_degrades_gracefully(self):
        data = np.zeros((10, 3), dtype=int)
        mask = np.ones_like(data, dtype=bool)
        mask[:, 0] = False
        masked = StatusMatrix(data, mask)
        assert delta_i(masked, 0) == 0.0


class TestMissingPolicies:
    @pytest.fixture(scope="class")
    def masked_statuses(self) -> StatusMatrix:
        rng = np.random.default_rng(6)
        clean = StatusMatrix((rng.random((100, 8)) < 0.4).astype(int))
        return missing_at_random(clean, 0.2, seed=3).statuses

    def test_refuse_raises_on_masked_input(self, masked_statuses):
        with pytest.raises(DataError, match="missing"):
            Tends(missing="refuse", audit="ignore").fit(masked_statuses)

    def test_zero_fill_matches_explicit_fill(self, masked_statuses):
        by_policy = Tends(missing="zero-fill", audit="ignore").fit(masked_statuses)
        by_hand = Tends(audit="ignore").fit(masked_statuses.filled(0))
        assert by_policy.graph.edge_set() == by_hand.graph.edge_set()
        assert by_policy.threshold == by_hand.threshold

    def test_pairwise_and_zero_fill_diverge_on_masked_input(self, masked_statuses):
        pairwise = Tends(audit="ignore").fit(masked_statuses)
        zero_fill = Tends(missing="zero-fill", audit="ignore").fit(masked_statuses)
        assert pairwise.threshold != zero_fill.threshold

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            TendsConfig(missing="drop-everything")


class TestStableThresholdAndConfidence:
    @pytest.fixture(scope="class")
    def statuses(self) -> StatusMatrix:
        rng = np.random.default_rng(12)
        data = (rng.random((120, 6)) < 0.35).astype(int)
        data[:, 1] = np.where(rng.random(120) < 0.85, data[:, 0], data[:, 1])
        return StatusMatrix(data)

    def test_stable_threshold_is_deterministic(self, statuses):
        first = Tends(threshold="stable", bootstrap_samples=30, audit="ignore").fit(statuses)
        second = Tends(threshold="stable", bootstrap_samples=30, audit="ignore").fit(statuses)
        assert first.graph.edge_set() == second.graph.edge_set()
        assert first.edge_confidence == second.edge_confidence

    def test_stable_edges_clear_ci_lower_bound(self, statuses):
        stable = Tends(threshold="stable", bootstrap_samples=30, audit="ignore").fit(statuses)
        lower, _ = stable.imi_bootstrap.ci()
        for parent, child in stable.graph.edge_set():
            # The screening rule: an inferred edge's pair survived the CI
            # check, so its lower bound clears τ.
            assert lower[parent, child] > stable.threshold

    def test_edge_confidence_reported_per_edge(self, statuses):
        result = Tends(threshold="stable", bootstrap_samples=30, audit="ignore").fit(statuses)
        assert result.edge_confidence is not None
        assert set(result.edge_confidence) == result.graph.edge_set()
        for value in result.edge_confidence.values():
            assert 0.0 <= value <= 1.0
        assert result.imi_bootstrap is not None
        assert result.imi_bootstrap.n_samples == 30
        assert "bootstrap" in result.stage_seconds

    def test_default_fit_has_no_confidence(self, statuses):
        result = Tends(audit="ignore").fit(statuses)
        assert result.edge_confidence is None
        assert result.imi_bootstrap is None

    def test_bootstrap_config_validation(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            TendsConfig(threshold="wobbly")
        with pytest.raises(ConfigurationError, match="bootstrap_samples"):
            TendsConfig(bootstrap_samples=0)
        with pytest.raises(ConfigurationError, match="ci_level"):
            TendsConfig(ci_level=1.5)
        with pytest.raises(ConfigurationError, match="bootstrap_seed"):
            TendsConfig(bootstrap_seed=-1)


class TestInputValidation:
    def test_non_binary_entry_names_offending_row(self):
        with pytest.raises(DataError) as excinfo:
            StatusMatrix([[0, 1], [2, 0]])
        message = str(excinfo.value)
        assert "must be 0 or 1" in message
        assert "row 1" in message and "column 0" in message

    def test_nan_entry_names_offending_row(self):
        with pytest.raises(DataError) as excinfo:
            StatusMatrix([[0.0, 1.0], [1.0, float("nan")]])
        message = str(excinfo.value)
        assert "row 1" in message and "column 1" in message

    def test_mask_shape_must_match(self):
        with pytest.raises(DataError, match="mask"):
            StatusMatrix([[0, 1]], np.ones((2, 2), dtype=bool))


class TestMaskRoundTrip:
    def test_npz_preserves_mask(self, tmp_path):
        rng = np.random.default_rng(2)
        clean = StatusMatrix((rng.random((20, 5)) < 0.4).astype(int))
        masked = missing_at_random(clean, 0.3, seed=1).statuses
        path = tmp_path / "statuses.npz"
        sim_io.write_statuses_npz(masked, path)
        restored = sim_io.read_statuses_npz(path)
        assert restored == masked
        assert restored.has_missing

    def test_npz_without_mask_stays_maskless(self, tmp_path):
        clean = StatusMatrix([[0, 1], [1, 0]])
        path = tmp_path / "clean.npz"
        sim_io.write_statuses_npz(clean, path)
        assert sim_io.read_statuses_npz(path).mask is None

    def test_csv_warns_when_mask_is_lost(self, tmp_path):
        from repro.exceptions import DataQualityWarning

        clean = StatusMatrix(np.ones((4, 3), dtype=int))
        masked = missing_at_random(clean, 0.5, seed=7).statuses
        path = tmp_path / "statuses.csv"
        with pytest.warns(DataQualityWarning, match="mask"):
            sim_io.write_statuses_csv(masked, path)
        assert sim_io.read_statuses_csv(path).mask is None
