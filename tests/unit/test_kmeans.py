"""Fixed-zero 2-means threshold selection (Algorithm 1, line 5)."""

import numpy as np
import pytest

from repro.core.kmeans import fixed_zero_two_means
from repro.exceptions import DataError


class TestDegenerateInputs:
    def test_empty(self):
        result = fixed_zero_two_means(np.array([]))
        assert result.threshold == 0.0
        assert result.n_zero_cluster == 0
        assert result.n_upper_cluster == 0

    def test_all_equal(self):
        result = fixed_zero_two_means(np.full(10, 0.5))
        assert result.threshold == 0.0
        assert result.n_upper_cluster == 10

    def test_all_zero(self):
        result = fixed_zero_two_means(np.zeros(10))
        assert result.threshold == 0.0

    def test_negative_rejected(self):
        with pytest.raises(DataError):
            fixed_zero_two_means(np.array([0.1, -0.2]))

    def test_single_value(self):
        result = fixed_zero_two_means(np.array([0.7]))
        assert result.threshold == 0.0
        assert result.n_upper_cluster == 1


class TestBimodalSplit:
    def test_clean_split(self):
        values = np.concatenate([np.full(50, 0.01), np.full(10, 0.5)])
        result = fixed_zero_two_means(values)
        assert result.threshold == pytest.approx(0.01)
        assert result.n_zero_cluster == 50
        assert result.n_upper_cluster == 10
        assert result.upper_centroid == pytest.approx(0.5)

    def test_noisy_bimodal(self):
        rng = np.random.default_rng(0)
        low = np.abs(rng.normal(0.0, 0.005, 500))
        high = rng.normal(0.4, 0.05, 60)
        result = fixed_zero_two_means(np.concatenate([low, high]))
        assert 0.0 < result.threshold < 0.2
        assert result.n_upper_cluster == pytest.approx(60, abs=5)

    def test_threshold_is_member_of_zero_cluster(self):
        values = np.array([0.01, 0.02, 0.03, 0.5, 0.6])
        result = fixed_zero_two_means(values)
        assert result.threshold in values
        assert result.threshold < result.upper_centroid / 2

    def test_accepts_2d_input(self):
        values = np.array([[0.01, 0.02], [0.5, 0.6]])
        result = fixed_zero_two_means(values)
        assert result.n_zero_cluster + result.n_upper_cluster == 4

    def test_converges_quickly(self):
        rng = np.random.default_rng(1)
        values = np.abs(rng.normal(0, 0.1, 1000))
        result = fixed_zero_two_means(values)
        assert result.iterations < 50

    def test_cluster_counts_sum(self):
        rng = np.random.default_rng(2)
        values = rng.random(321)
        result = fixed_zero_two_means(values)
        assert result.n_zero_cluster + result.n_upper_cluster == 321
