"""In-process tests for :class:`repro.serve.service.IngestService`.

Process-kill scenarios live in ``tests/faults/test_serve_crash.py``;
here we exercise the live loop: absorb/publish, retries, quarantine,
watchdog restart, drain semantics, and the reader-side atomicity
invariant (a reader never observes a partially-updated model).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.executor import RetryPolicy
from repro.core.tends import Tends
from repro.exceptions import ServiceError
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.serve import BatchPolicy, IngestService
from repro.serve.service import SNAPSHOT_KEEP
from repro.simulation.engine import DiffusionSimulator

#: Generous bound for waiting on the absorb loop in CI.
WAIT = 30.0

#: Fire the debounce almost immediately so tests never sit in it.
FAST = BatchPolicy(max_cascades=10, max_delay_seconds=0.02)


@pytest.fixture(scope="module")
def corpus():
    """A bootstrap model plus a stream of small batches (module-scoped:
    the fits dominate this suite's runtime)."""
    truth = erdos_renyi_digraph(10, 0.2, seed=7)
    statuses = DiffusionSimulator(truth, seed=7).run(beta=220).statuses
    base = statuses.subset(range(120))
    batches = [
        statuses.subset(range(120 + i * 10, 120 + (i + 1) * 10))
        for i in range(10)
    ]
    estimator = Tends()
    estimator.fit(base)
    return estimator.model, base, batches


def reference_fingerprint(base, batches):
    estimator = Tends()
    estimator.fit(base)
    for batch in batches:
        estimator.partial_fit(batch)
    return estimator.model.fingerprint()


def wait_until(predicate, timeout=WAIT, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestAbsorbAndServe:
    def test_submitted_batches_are_absorbed_bit_identically(
        self, tmp_path, corpus
    ):
        bootstrap, base, batches = corpus
        with IngestService(tmp_path / "svc", bootstrap, batch_policy=FAST) as svc:
            for batch in batches[:4]:
                svc.submit(batch)
            wait_until(lambda: svc.stats().absorbed_seq >= 4,
                       message="4 batches absorbed")
            assert svc.model.fingerprint() == reference_fingerprint(
                base, batches[:4]
            )
            assert svc.stats().status == "serving"
            assert len(svc.edges()) == len(svc.edge_confidence())
            assert all(v >= 1.0 for v in svc.edge_confidence().values())

    def test_readers_never_observe_a_partial_model(self, tmp_path, corpus):
        bootstrap, base, batches = corpus
        betas = {bootstrap.beta + sum(b.beta for b in batches[:i])
                 for i in range(len(batches) + 1)}
        violations = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                model = svc.model  # one atomic reference grab
                if (
                    model.beta not in betas
                    or model.stats.beta != model.beta
                    or len(model.parent_sets) != model.n_nodes
                ):
                    violations.append(model.beta)

        with IngestService(
            tmp_path / "svc", bootstrap,
            batch_policy=BatchPolicy(max_cascades=1, max_delay_seconds=0.01),
        ) as svc:
            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            for batch in batches:
                svc.submit(batch)
            wait_until(lambda: svc.stats().absorbed_seq >= len(batches),
                       message="all batches absorbed")
            stop.set()
            for thread in threads:
                thread.join(WAIT)
        assert violations == []

    def test_drain_false_leaves_batches_journaled_for_replay(
        self, tmp_path, corpus
    ):
        bootstrap, base, batches = corpus
        directory = tmp_path / "svc"
        # Slow debounce so the batches are still queued at close time.
        svc = IngestService(
            directory, bootstrap,
            batch_policy=BatchPolicy(max_cascades=1000, max_delay_seconds=60),
        ).start()
        for batch in batches[:3]:
            svc.submit(batch)
        svc.close(drain=False, timeout=WAIT)
        assert svc.stats().absorbed_seq == 0

        reopened = IngestService(directory)
        try:
            assert reopened.recovered_batches == 3
            assert reopened.model.fingerprint() == reference_fingerprint(
                base, batches[:3]
            )
        finally:
            reopened.close()

    def test_drain_true_absorbs_everything_before_stopping(
        self, tmp_path, corpus
    ):
        bootstrap, base, batches = corpus
        directory = tmp_path / "svc"
        svc = IngestService(
            directory, bootstrap,
            batch_policy=BatchPolicy(max_cascades=1000, max_delay_seconds=60),
        ).start()
        for batch in batches[:3]:
            svc.submit(batch)
        svc.close(drain=True, timeout=WAIT)
        assert svc.stats().absorbed_seq == 3
        reopened = IngestService(directory)
        try:
            assert reopened.recovered_batches == 0  # snapshot covered it all
        finally:
            reopened.close()


class TestFlightRecorder:
    def test_latency_summaries_and_events_accumulate(self, tmp_path, corpus):
        bootstrap, _base, batches = corpus
        with IngestService(tmp_path / "svc", bootstrap, batch_policy=FAST) as svc:
            assert svc.recorder is not None
            for batch in batches[:2]:
                svc.submit(batch)
            wait_until(lambda: svc.stats().absorbed_seq >= 2,
                       message="2 batches absorbed")
            histograms = svc.metrics.snapshot()["histograms"]
            assert histograms["serve_submit_seconds"]["count"] == 2
            assert histograms["serve_absorb_seconds"]["count"] >= 1
            kinds = [e["kind"] for e in svc.recorder.events()]
            assert kinds.count("submit") == 2
            assert "publish" in kinds
            trace = svc.debug_trace()
            assert trace["enabled"] is True
            assert trace["absorbed_seq"] >= 2
            assert any(
                span["name"] == "serve.absorb" for span in trace["spans"]
            )

    def test_recorder_ring_is_bounded(self, tmp_path, corpus):
        bootstrap, _base, batches = corpus
        with IngestService(
            tmp_path / "svc", bootstrap, batch_policy=FAST, flight_recorder=3
        ) as svc:
            for batch in batches[:5]:
                svc.submit(batch)
            wait_until(lambda: svc.stats().absorbed_seq >= 5,
                       message="5 batches absorbed")
            assert svc.recorder.capacity == 3
            assert len(svc.recorder.events()) <= 3
            assert len(svc.debug_trace()["spans"]) <= 3

    def test_disabled_recorder_reports_empty_shell(self, tmp_path, corpus):
        bootstrap, _base, batches = corpus
        with IngestService(
            tmp_path / "svc", bootstrap, batch_policy=FAST, flight_recorder=None
        ) as svc:
            svc.submit(batches[0])
            wait_until(lambda: svc.stats().absorbed_seq >= 1,
                       message="1 batch absorbed")
            trace = svc.debug_trace()
            assert trace["enabled"] is False
            assert trace["spans"] == [] and trace["events"] == []
            # Latency summaries do not depend on the recorder.
            histograms = svc.metrics.snapshot()["histograms"]
            assert histograms["serve_submit_seconds"]["count"] == 1


class TestSubmitValidation:
    def test_rejects_wrong_node_count(self, tmp_path, corpus):
        bootstrap, _base, _batches = corpus
        other = DiffusionSimulator(
            erdos_renyi_digraph(5, 0.3, seed=1), seed=1
        ).run(beta=4).statuses
        with IngestService(tmp_path / "svc", bootstrap) as svc:
            with pytest.raises(ServiceError, match="nodes"):
                svc.submit(other)

    def test_rejects_after_close(self, tmp_path, corpus):
        bootstrap, _base, batches = corpus
        svc = IngestService(tmp_path / "svc", bootstrap).start()
        svc.close()
        with pytest.raises(ServiceError, match="shutting down"):
            svc.submit(batches[0])

    def test_empty_directory_without_bootstrap_raises(self, tmp_path):
        with pytest.raises(ServiceError, match="no loadable model snapshot"):
            IngestService(tmp_path / "empty")


class TestFailureHandling:
    def _flaky(self, estimator, failures_by_call):
        """Wrap ``estimator.partial_fit`` to raise per a call schedule."""
        original = estimator.partial_fit
        calls = {"n": 0}

        def wrapped(batch):
            index = calls["n"]
            calls["n"] += 1
            action = failures_by_call.get(index)
            if action == "raise":
                raise RuntimeError(f"injected absorb failure on call {index}")
            if action == "hang":
                time.sleep(1.0)
            return original(batch)

        estimator.partial_fit = wrapped
        return calls

    def test_transient_failure_is_retried_with_jittered_backoff(
        self, tmp_path, corpus
    ):
        bootstrap, base, batches = corpus
        svc = IngestService(
            tmp_path / "svc", bootstrap, batch_policy=FAST,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.01, jitter=0.5),
        )
        self._flaky(svc._estimator, {0: "raise"})
        with svc:
            svc.submit(batches[0])
            wait_until(lambda: svc.stats().absorbed_seq >= 1,
                       message="retried absorb")
            stats = svc.stats()
        assert stats.retries >= 1
        assert stats.quarantined == 0
        assert svc.model.fingerprint() == reference_fingerprint(base, batches[:1])

    def test_permanent_failure_quarantines_and_keeps_serving(
        self, tmp_path, corpus
    ):
        bootstrap, base, batches = corpus
        directory = tmp_path / "svc"
        svc = IngestService(
            directory, bootstrap, batch_policy=FAST,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
        )
        # Seq 1 arrives alone, so it gets exactly max_attempts=2 calls;
        # both fail -> quarantine.  Later calls absorb cleanly.
        self._flaky(svc._estimator, {0: "raise", 1: "raise"})
        with svc:
            svc.submit(batches[0])
            wait_until(lambda: svc.stats().quarantined >= 1,
                       message="quarantine verdict")
            svc.submit(batches[1])
            wait_until(lambda: svc.stats().absorbed_seq >= 2,
                       message="later batch absorbed")
            stats = svc.stats()
            fingerprint = svc.model.fingerprint()
        assert stats.status == "degraded"
        assert stats.quarantined == 1
        # The served model skipped the quarantined batch entirely.
        assert fingerprint == reference_fingerprint(base, [batches[1]])

        # ... and recovery honours the quarantine verdict durably.
        reopened = IngestService(directory)
        try:
            assert reopened.recovered_batches == 0
            assert reopened.model.fingerprint() == fingerprint
        finally:
            reopened.close()

    def test_watchdog_restarts_a_hung_absorb_loop(self, tmp_path, corpus):
        bootstrap, base, batches = corpus
        svc = IngestService(
            tmp_path / "svc", bootstrap, batch_policy=FAST,
            retry=RetryPolicy(max_attempts=1),
            hang_timeout=0.2, watchdog_interval=0.05,
        )
        self._flaky(svc._estimator, {0: "hang"})
        with svc:
            svc.submit(batches[0])
            wait_until(lambda: svc.stats().watchdog_restarts >= 1,
                       message="watchdog restart")
            wait_until(lambda: svc.stats().absorbed_seq >= 1,
                       message="replacement loop absorbed the batch")
            # Give the abandoned loop time to finish its sleep and try
            # (and fail) to publish with a retired generation.
            time.sleep(1.2)
            stats = svc.stats()
            assert stats.watchdog_restarts == 1
            assert stats.absorbed_batches == 1  # published exactly once
            assert svc.model.fingerprint() == reference_fingerprint(
                base, batches[:1]
            )


class TestSnapshots:
    def test_snapshot_cadence_and_retention(self, tmp_path, corpus):
        bootstrap, _base, batches = corpus
        directory = tmp_path / "svc"
        with IngestService(
            directory, bootstrap,
            batch_policy=BatchPolicy(max_cascades=1, max_delay_seconds=0.01),
            snapshot_every=2,
        ) as svc:
            for batch in batches[:6]:
                svc.submit(batch)
            wait_until(lambda: svc.stats().absorbed_seq >= 6,
                       message="6 batches absorbed")
        snapshots = sorted(directory.glob("model-*.npz"))
        assert len(snapshots) <= SNAPSHOT_KEEP
        # The close() snapshot carries the final watermark.
        assert snapshots[-1].name == "model-000000000006.npz"

    def test_snapshot_now_forces_a_snapshot(self, tmp_path, corpus):
        bootstrap, _base, _batches = corpus
        with IngestService(tmp_path / "svc", bootstrap) as svc:
            path = svc.snapshot_now()
            assert path.exists()
            assert svc.stats().snapshots_written >= 1


class TestDriftPolicies:
    def _drifting_batches(self, n=10, seed=31):
        """Batches whose later half comes from a different ground truth."""
        truth_a = erdos_renyi_digraph(n, 0.2, seed=seed)
        truth_b = erdos_renyi_digraph(n, 0.2, seed=seed + 1)
        stream_a = DiffusionSimulator(truth_a, seed=seed).run(beta=160).statuses
        stream_b = DiffusionSimulator(truth_b, seed=seed + 1).run(beta=60).statuses
        base = stream_a.subset(range(120))
        batches = [
            stream_a.subset(range(120, 140)),
            stream_a.subset(range(140, 160)),
            stream_b.subset(range(0, 20)),
            stream_b.subset(range(20, 40)),
            stream_b.subset(range(40, 60)),
        ]
        estimator = Tends()
        estimator.fit(base)
        return estimator.model, base, batches

    def test_invalid_policy_rejected(self, tmp_path, corpus):
        bootstrap, _base, _batches = corpus
        with pytest.raises(ServiceError):
            IngestService(tmp_path / "svc", bootstrap, drift="sometimes")

    def test_off_policy_is_bit_identical_to_plain_serving(
        self, tmp_path, corpus
    ):
        bootstrap, base, batches = corpus
        with IngestService(
            tmp_path / "svc", bootstrap, batch_policy=FAST, drift="off"
        ) as svc:
            for batch in batches[:3]:
                svc.submit(batch)
            wait_until(lambda: svc.stats().absorbed_seq >= 3,
                       message="3 batches absorbed")
            stats = svc.stats()
            fingerprint = svc.model.fingerprint()
        assert stats.drift_mode == "off"
        assert stats.drift_checks == 0
        assert fingerprint == reference_fingerprint(base, batches[:3])

    def test_detect_policy_flags_but_keeps_accumulating(self, tmp_path):
        from repro.core.drift import DriftConfig

        bootstrap, base, batches = self._drifting_batches()
        config = DriftConfig(alpha=0.01, min_window_beta=5, min_pair_obs=5)
        with IngestService(
            tmp_path / "svc", bootstrap, batch_policy=FAST,
            drift="detect", drift_config=config,
        ) as svc:
            for batch in batches:
                svc.submit(batch)
            wait_until(lambda: svc.stats().absorbed_seq >= len(batches),
                       message="all batches absorbed")
            stats = svc.stats()
            fingerprint = svc.model.fingerprint()
            report = svc.last_drift_report
        assert stats.drift_mode == "detect"
        assert stats.drift_checks == len(batches)
        assert stats.drift_detections >= 1
        assert stats.drift_adaptations == 0
        assert report is not None and report.drifted
        # Log-only: the model accumulated exactly as plain serving would.
        assert fingerprint == reference_fingerprint(base, batches)

    def test_adapt_policy_heals_and_reports(self, tmp_path):
        from repro.core.drift import DriftConfig
        from repro.core.tends import Tends as TendsEstimator

        bootstrap, base, batches = self._drifting_batches()
        config = DriftConfig(alpha=0.01, min_window_beta=5, min_pair_obs=5)
        with IngestService(
            tmp_path / "svc", bootstrap, batch_policy=FAST,
            drift="adapt", drift_config=config,
        ) as svc:
            for batch in batches:
                svc.submit(batch)
            wait_until(lambda: svc.stats().absorbed_seq >= len(batches),
                       message="all batches absorbed")
            stats = svc.stats()
            fingerprint = svc.model.fingerprint()
            health = svc.health()
        assert stats.drift_adaptations >= 1
        assert stats.drift_last_nodes >= 1
        assert health["drift"]["mode"] == "adapt"
        assert health["drift"]["adaptations"] == stats.drift_adaptations
        # Reference: the same per-record detect-then-adapt sequence.
        reference = TendsEstimator()
        reference.fit(base)
        for batch in batches:
            result = reference.partial_fit(
                batch, drift="detect", drift_config=config
            )
            if result.drift is not None and result.drift.drifted:
                reference.apply_drift_adaptation(result.drift)
        assert fingerprint == reference.model.fingerprint()

    def test_snapshot_adapt_leaves_preadapt_snapshot(self, tmp_path):
        from repro.core.drift import DriftConfig

        bootstrap, _base, batches = self._drifting_batches()
        config = DriftConfig(alpha=0.01, min_window_beta=5, min_pair_obs=5)
        directory = tmp_path / "svc"
        with IngestService(
            directory, bootstrap, batch_policy=FAST,
            drift="snapshot-adapt", drift_config=config,
        ) as svc:
            for batch in batches:
                svc.submit(batch)
            wait_until(lambda: svc.stats().drift_adaptations >= 1,
                       message="an adaptation fired")
            wait_until(lambda: svc.stats().absorbed_seq >= len(batches),
                       message="all batches absorbed")
        preadapt = sorted(directory.glob("preadapt-*.npz"))
        assert preadapt, "snapshot-adapt must leave a pre-adapt snapshot"
        # Pre-adapt snapshots must stay out of the recovery glob.
        assert not any(p.name.startswith("model-") for p in preadapt)


class TestQuarantineCap:
    def test_store_is_compacted_beyond_the_limit(self, tmp_path, corpus):
        bootstrap, _base, batches = corpus
        directory = tmp_path / "svc"
        svc = IngestService(
            directory, bootstrap, batch_policy=FAST,
            retry=RetryPolicy(max_attempts=1, backoff_seconds=0.0),
            snapshot_every=1, quarantine_limit=2,
        )
        # Even-indexed absorb calls fail permanently; odd ones succeed
        # and (snapshot_every=1) advance the snapshot watermark that
        # makes older quarantine entries evictable.
        original = svc._estimator.partial_fit
        calls = {"n": 0}

        def flaky(batch):
            index = calls["n"]
            calls["n"] += 1
            if index % 2 == 0:
                raise RuntimeError(f"injected failure on call {index}")
            return original(batch)

        svc._estimator.partial_fit = flaky
        with svc:
            # Pace one batch at a time so absorb calls map 1:1 to seqs
            # (no coalescing) and the fail/succeed alternation is exact.
            for index, batch in enumerate(batches):
                svc.submit(batch)
                wait_until(
                    lambda want=index + 1: (
                        svc.stats().quarantined + svc.stats().absorbed_batches
                        >= want
                    ),
                    message=f"batch {index + 1} absorbed or quarantined",
                )
            stats = svc.stats()
        assert stats.quarantined >= 3
        assert stats.quarantine_entries <= 2
        assert stats.quarantine_evicted >= 1
        # Reopening honours the compacted store: no CRC/parse errors.
        reopened = IngestService(directory)
        try:
            assert reopened.stats().quarantine_entries <= 2
        finally:
            reopened.close()


class TestDegradedRecency:
    def test_watchdog_restart_degrades_until_window_passes(
        self, tmp_path, corpus
    ):
        bootstrap, _base, _batches = corpus
        fake = {"now": 1000.0}
        svc = IngestService(
            tmp_path / "svc", bootstrap,
            clock=lambda: fake["now"], degraded_window=5.0,
        )
        try:
            assert svc.stats().status == "serving"
            # Simulate a recent watchdog restart.
            svc._last_watchdog_restart_at = fake["now"]
            assert svc.stats().status == "degraded"
            assert svc.health()["status"] == "degraded"
            # Outside the window the service is honest about being fine.
            fake["now"] += 6.0
            assert svc.stats().status == "serving"
        finally:
            svc.close()
