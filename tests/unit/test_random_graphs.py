"""Classic random graph generators."""

import pytest

from repro.exceptions import ConfigurationError
from repro.graphs.generators.random_graphs import (
    barabasi_albert_digraph,
    core_periphery_digraph,
    erdos_renyi_digraph,
    random_tree_digraph,
    watts_strogatz_digraph,
)


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        graph = erdos_renyi_digraph(100, 0.05, seed=0)
        expected = 0.05 * 100 * 99
        assert 0.7 * expected < graph.n_edges < 1.3 * expected

    def test_zero_probability(self):
        assert erdos_renyi_digraph(20, 0.0, seed=0).n_edges == 0

    def test_full_probability(self):
        graph = erdos_renyi_digraph(10, 1.0, seed=0)
        assert graph.n_edges == 90

    def test_deterministic(self):
        a = erdos_renyi_digraph(30, 0.1, seed=5)
        b = erdos_renyi_digraph(30, 0.1, seed=5)
        assert a.edge_set() == b.edge_set()

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_digraph(10, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        graph = barabasi_albert_digraph(50, 2, seed=0)
        assert graph.n_edges == (50 - 2) * 2

    def test_heavy_tailed_in_degree(self):
        graph = barabasi_albert_digraph(300, 2, seed=1)
        in_degrees = graph.in_degrees()
        assert in_degrees.max() >= 5 * max(in_degrees.mean(), 1)

    def test_m_attach_must_be_smaller_than_n(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_digraph(5, 5)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring(self):
        graph = watts_strogatz_digraph(10, 2, 0.0, seed=0)
        assert graph.n_edges == 20
        assert graph.has_edge(0, 1) and graph.has_edge(0, 2)

    def test_rewiring_keeps_edge_budget_close(self):
        graph = watts_strogatz_digraph(50, 3, 0.3, seed=1)
        assert graph.n_edges <= 150
        assert graph.n_edges >= 140  # a few rewires may collide and drop

    def test_k_bound(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_digraph(5, 5, 0.1)


class TestRandomTree:
    def test_edge_count(self):
        tree = random_tree_digraph(30, seed=0)
        assert tree.n_edges == 29

    def test_every_non_root_has_one_parent(self):
        tree = random_tree_digraph(30, seed=1)
        in_degrees = tree.in_degrees()
        assert in_degrees[0] == 0
        assert all(d == 1 for d in in_degrees[1:])

    def test_single_node(self):
        assert random_tree_digraph(1, seed=0).n_edges == 0


class TestCorePeriphery:
    def test_periphery_receives_from_core(self):
        graph = core_periphery_digraph(50, core_fraction=0.2, seed=0)
        n_core = 10
        for node in range(n_core, 50):
            predecessors = graph.predecessors(node)
            assert len(predecessors) >= 1
            assert all(p < n_core for p in predecessors)

    def test_core_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            core_periphery_digraph(10, core_fraction=0.0)
        with pytest.raises(ConfigurationError):
            core_periphery_digraph(10, core_fraction=1.0)

    def test_all_core_rejected(self):
        with pytest.raises(ConfigurationError):
            core_periphery_digraph(4, core_fraction=0.99)
