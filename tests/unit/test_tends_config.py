"""TendsConfig validation and override mechanics."""

import pytest

from repro.core.config import TendsConfig
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self):
        config = TendsConfig()
        assert config.mi_kind == "infection"
        assert config.threshold is None
        assert config.threshold_scale == 1.0
        assert config.search_strategy == "greedy-rescoring"
        assert config.max_combination_size == 1
        assert config.max_candidates is None
        assert config.min_improvement == 0.0

    def test_executor_defaults_defer_resolution(self):
        # None = "resolve at fit time" (env fallbacks, then serial), so a
        # pickled config never bakes in one machine's CPU count.
        config = TendsConfig()
        assert config.executor is None
        assert config.n_jobs is None
        assert config.chunk_size is None


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mi_kind": "magic"},
            {"search_strategy": "exhaustive"},
            {"max_combination_size": 0},
            {"threshold_scale": -1.0},
            {"min_improvement": -0.1},
            {"threshold": -0.5},
            {"max_candidates": 0},
            {"executor": "gpu"},
            {"n_jobs": 0},
            {"n_jobs": -2},
            {"chunk_size": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            TendsConfig(**kwargs)

    def test_accepts_executor_settings(self):
        config = TendsConfig(executor="process", n_jobs=-1, chunk_size=16)
        assert config.executor == "process"
        assert config.n_jobs == -1
        assert config.chunk_size == 16

    def test_accepts_traditional_mi(self):
        assert TendsConfig(mi_kind="traditional").mi_kind == "traditional"

    def test_accepts_explicit_threshold(self):
        assert TendsConfig(threshold=0.02).threshold == 0.02


class TestOverrides:
    def test_with_overrides_returns_new_instance(self):
        base = TendsConfig()
        changed = base.with_overrides(threshold_scale=0.5)
        assert changed.threshold_scale == 0.5
        assert base.threshold_scale == 1.0

    def test_override_validation_applies(self):
        with pytest.raises(ConfigurationError):
            TendsConfig().with_overrides(mi_kind="nope")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TendsConfig().mi_kind = "traditional"  # type: ignore[misc]
