"""Public-API surface checks: exports resolve, docstrings exist.

These are the contracts docs/API.md documents; a missing export or a
public callable without a docstring is a release regression.
"""

import inspect

import pytest

import repro
import repro.analysis
import repro.baselines
import repro.core
import repro.evaluation
import repro.graphs
import repro.serve
import repro.simulation

PACKAGES = [
    repro,
    repro.core,
    repro.graphs,
    repro.simulation,
    repro.baselines,
    repro.evaluation,
    repro.analysis,
    repro.serve,
]


@pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
def test_all_exports_resolve(package):
    for name in package.__all__:
        assert hasattr(package, name), f"{package.__name__}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
def test_exports_have_docstrings(package):
    undocumented = []
    for name in package.__all__:
        attr = getattr(package, name)
        if inspect.ismodule(attr) or isinstance(attr, str):
            continue
        if callable(attr) and not (attr.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, f"{package.__name__}: undocumented {undocumented}"


def test_version_is_semver_like():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_inferrers_share_interface():
    from repro.baselines import (
        CorrelationRanker,
        Lift,
        MulTree,
        NetInf,
        NetRate,
        NetworkInferrer,
        Path,
        TendsInferrer,
    )

    instances = [
        TendsInferrer(),
        NetRate(),
        MulTree(5),
        NetInf(5),
        Lift(5),
        Path(5),
        CorrelationRanker(5),
    ]
    names = set()
    for inferrer in instances:
        assert isinstance(inferrer, NetworkInferrer)
        assert inferrer.requires <= {"statuses", "cascades", "seed_sets"}
        assert inferrer.name
        names.add(inferrer.name)
    assert len(names) == len(instances)  # distinct display names


def test_exception_hierarchy_is_exported_flat():
    from repro import (
        ConfigurationError,
        ConvergenceError,
        DataError,
        GraphError,
        InferenceError,
        ReproError,
        SimulationError,
    )

    for exc in (
        ConfigurationError,
        ConvergenceError,
        DataError,
        GraphError,
        InferenceError,
        SimulationError,
    ):
        assert issubclass(exc, ReproError)
