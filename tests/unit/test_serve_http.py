"""Tests for the stdlib HTTP frontend over a live ingest service."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.tends import Tends
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.serve import BatchPolicy, IngestService, encode_statuses
from repro.serve.http import start_http_server
from repro.simulation.engine import DiffusionSimulator

WAIT = 30.0


@pytest.fixture(scope="module")
def corpus():
    truth = erdos_renyi_digraph(10, 0.2, seed=17)
    statuses = DiffusionSimulator(truth, seed=17).run(beta=150).statuses
    base = statuses.subset(range(120))
    batch = statuses.subset(range(120, 150))
    estimator = Tends()
    estimator.fit(base)
    return estimator.model, batch


@pytest.fixture()
def served(tmp_path, corpus):
    bootstrap, batch = corpus
    service = IngestService(
        tmp_path / "svc", bootstrap,
        batch_policy=BatchPolicy(max_cascades=10, max_delay_seconds=0.01),
    ).start()
    server = start_http_server(service)
    host, port = server.server_address[:2]
    yield service, batch, f"http://{host}:{port}"
    server.shutdown()
    service.close()


def get(url):
    with urllib.request.urlopen(url, timeout=WAIT) as response:
        return response.status, json.loads(response.read())


def get_text(url):
    with urllib.request.urlopen(url, timeout=WAIT) as response:
        content_type = response.headers.get("Content-Type", "")
        return response.status, content_type, response.read().decode()


def post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=WAIT) as response:
        return response.status, json.loads(response.read())


class TestReadEndpoints:
    def test_health_serves_200_while_healthy(self, served):
        _service, _batch, origin = served
        status, health = get(origin + "/health")
        assert status == 200
        assert health["status"] == "serving"
        assert health["model_beta"] == 120

    def test_stats_and_metrics_round_trip(self, served):
        _service, batch, origin = served
        status, stats = get(origin + "/stats")
        assert status == 200
        assert stats["absorbed_seq"] == 0
        post(origin + "/ingest", {"batch": encode_statuses(batch)})
        # Default /metrics is Prometheus exposition text...
        status, content_type, text = get_text(origin + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "# TYPE repro_serve_submitted_batches_total counter" in text
        assert "# TYPE repro_serve_submit_seconds summary" in text
        assert "repro_serve_submit_seconds_count 1" in text
        # ...and ?format=json keeps the raw snapshot available.
        status, metrics = get(origin + "/metrics?format=json")
        assert status == 200
        assert "counters" in metrics and "histograms" in metrics
        assert metrics["counters"]["serve_submitted_batches_total"] == 1

    def test_edges_carry_confidence_margins(self, served):
        service, _batch, origin = served
        status, payload = get(origin + "/edges")
        assert status == 200
        assert len(payload["edges"]) == len(service.edges())
        assert all(value >= 1.0 for value in payload["confidence"].values())

    def test_unknown_path_is_404(self, served):
        _service, _batch, origin = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(origin + "/nope")
        assert excinfo.value.code == 404


class TestDebugEndpoints:
    def test_debug_trace_reports_recorder_state(self, served):
        _service, batch, origin = served
        status, payload = get(origin + "/debug/trace")
        assert status == 200
        assert payload["enabled"] is True
        assert payload["capacity"] == 256
        assert payload["status"] == "serving"
        # Exercise the pipeline, then the ring must carry the story.
        post(origin + "/ingest", {"batch": encode_statuses(batch)})
        deadline = time.monotonic() + WAIT
        while time.monotonic() < deadline:
            _status, payload = get(origin + "/debug/trace")
            if payload["absorbed_seq"] >= 1:
                break
            time.sleep(0.01)
        kinds = {event["kind"] for event in payload["events"]}
        assert {"submit", "publish"} <= kinds
        assert all("unix_time" in event for event in payload["events"])
        span_names = {span["name"] for span in payload["spans"]}
        assert "serve.absorb" in span_names

    def test_debug_profile_samples_the_live_process(self, served):
        _service, _batch, origin = served
        status, profile = get(origin + "/debug/profile?seconds=0.2&hz=200")
        assert status == 200
        assert profile["hz"] == 200
        assert profile["samples"] >= 1
        assert isinstance(profile["stacks"], dict)

    def test_debug_profile_rejects_garbage_params(self, served):
        _service, _batch, origin = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(origin + "/debug/profile?seconds=banana")
        assert excinfo.value.code == 400


class TestIngestEndpoint:
    def test_packed_payload_is_journaled_and_absorbed(self, served):
        service, batch, origin = served
        status, reply = post(
            origin + "/ingest", {"batch": encode_statuses(batch)}
        )
        assert status == 202
        assert reply["seq"] == 1
        deadline = time.monotonic() + WAIT
        while time.monotonic() < deadline:
            if service.stats().absorbed_seq >= 1:
                break
            time.sleep(0.01)
        assert service.model.beta == 150

    def test_raw_statuses_payload_works_too(self, served):
        _service, batch, origin = served
        status, reply = post(
            origin + "/ingest", {"statuses": batch.values.tolist()}
        )
        assert status == 202 and reply["seq"] == 1

    @pytest.mark.parametrize(
        "payload", [{}, {"batch": {"shape": [2, 2]}}, {"statuses": "nope"}]
    )
    def test_malformed_body_is_400(self, served, payload):
        _service, _batch, origin = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(origin + "/ingest", payload)
        assert excinfo.value.code == 400

    def test_draining_service_refuses_with_503(self, served):
        service, batch, origin = served
        service.close()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(origin + "/ingest", {"batch": encode_statuses(batch)})
        assert excinfo.value.code == 503
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(origin + "/health")
        assert excinfo.value.code == 503


class TestStrictHealth:
    def test_degraded_service_passes_lenient_fails_strict(self, tmp_path, corpus):
        bootstrap, _batch = corpus
        fake = {"now": 500.0}
        service = IngestService(
            tmp_path / "svc2", bootstrap,
            clock=lambda: fake["now"], degraded_window=60.0,
        ).start()
        server = start_http_server(service)
        host, port = server.server_address[:2]
        origin = f"http://{host}:{port}"
        try:
            # Healthy: both probes pass.
            assert get(origin + "/health")[0] == 200
            assert get(origin + "/health?strict=1")[0] == 200
            # Simulate a recent watchdog restart -> degraded.
            service._last_watchdog_restart_at = fake["now"]
            status, health = get(origin + "/health")
            assert status == 200
            assert health["status"] == "degraded"
            with pytest.raises(urllib.error.HTTPError) as failure:
                get(origin + "/health?strict=1")
            assert failure.value.code == 503
            # strict=0 stays lenient.
            assert get(origin + "/health?strict=0")[0] == 200
        finally:
            server.shutdown()
            service.close()

    def test_health_reports_drift_block_and_absorb_age(self, served):
        _service, _batch, origin = served
        _status, health = get(origin + "/health")
        assert health["drift"]["mode"] == "off"
        assert "quarantine_entries" in health
        assert "last_absorb_age_seconds" in health
