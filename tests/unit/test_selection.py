"""Held-out threshold-scale selection."""

import numpy as np
import pytest

from repro.core.config import TendsConfig
from repro.core.selection import (
    predictive_log_likelihood,
    select_threshold_scale,
)
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.statuses import StatusMatrix


def _coupled_statuses(beta: int = 120, seed: int = 0) -> StatusMatrix:
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, beta)
    b = np.where(rng.random(beta) < 0.1, 1 - a, a)
    noise = rng.integers(0, 2, (beta, 2))
    return StatusMatrix(np.column_stack([a, b, noise]))


class TestPredictiveLogLikelihood:
    def test_true_parent_beats_no_parent(self):
        statuses = _coupled_statuses()
        train = statuses.subset(range(80))
        valid = statuses.subset(range(80, 120))
        with_parent = predictive_log_likelihood(
            train, valid, [[], [0], [], []]
        )
        without = predictive_log_likelihood(train, valid, [[], [], [], []])
        assert with_parent > without

    def test_random_parent_does_not_help_much(self):
        statuses = _coupled_statuses()
        train = statuses.subset(range(80))
        valid = statuses.subset(range(80, 120))
        junk = predictive_log_likelihood(train, valid, [[], [2], [], []])
        without = predictive_log_likelihood(train, valid, [[], [], [], []])
        assert junk <= without + 3.0  # noise parents buy nothing real

    def test_always_negative(self):
        statuses = _coupled_statuses()
        train = statuses.subset(range(60))
        valid = statuses.subset(range(60, 120))
        value = predictive_log_likelihood(train, valid, [[], [], [], []])
        assert value < 0

    def test_unseen_patterns_fall_back_to_marginal(self):
        train = StatusMatrix([[0, 0], [0, 1]])  # parent 0 always uninfected
        valid = StatusMatrix([[1, 1]])  # unseen parent pattern
        value = predictive_log_likelihood(train, valid, [[], [0]])
        assert np.isfinite(value)

    def test_node_count_mismatch_rejected(self):
        with pytest.raises(DataError):
            predictive_log_likelihood(
                StatusMatrix([[0, 1]]), StatusMatrix([[0, 1, 0]]), [[], []]
            )

    def test_parent_sets_length_checked(self):
        statuses = _coupled_statuses()
        with pytest.raises(DataError):
            predictive_log_likelihood(statuses, statuses, [[]])


class TestSelectThresholdScale:
    def test_returns_candidate_scale_and_full_fit(self):
        statuses = _coupled_statuses(beta=150)
        selection = select_threshold_scale(
            statuses, scales=(0.8, 1.0, 1.5), seed=0
        )
        assert selection.best_scale in (0.8, 1.0, 1.5)
        assert set(selection.scores) == {0.8, 1.0, 1.5}
        assert selection.result.graph.n_nodes == 4

    def test_best_scale_maximises_score(self):
        statuses = _coupled_statuses(beta=150)
        selection = select_threshold_scale(statuses, scales=(0.8, 1.2), seed=1)
        assert selection.scores[selection.best_scale] == max(
            selection.scores.values()
        )

    def test_strong_signal_still_recovered(self):
        statuses = _coupled_statuses(beta=200, seed=2)
        selection = select_threshold_scale(statuses, seed=3)
        edges = selection.result.graph.edge_set()
        assert (0, 1) in edges and (1, 0) in edges

    def test_respects_base_config(self):
        statuses = _coupled_statuses(beta=150)
        selection = select_threshold_scale(
            statuses,
            scales=(1.0,),
            config=TendsConfig(mi_kind="traditional"),
            seed=0,
        )
        assert selection.result.mi_matrix.min() >= 0.0  # traditional MI

    def test_empty_scales_rejected(self):
        with pytest.raises(ConfigurationError):
            select_threshold_scale(_coupled_statuses(), scales=())

    def test_degenerate_heldout_fraction_rejected(self):
        statuses = StatusMatrix([[0, 1], [1, 0]])
        with pytest.raises(ConfigurationError):
            select_threshold_scale(statuses, heldout_fraction=0.9)

    def test_deterministic_for_seed(self):
        statuses = _coupled_statuses(beta=150)
        a = select_threshold_scale(statuses, seed=7)
        b = select_threshold_scale(statuses, seed=7)
        assert a.best_scale == b.best_scale
        assert a.scores == b.scores