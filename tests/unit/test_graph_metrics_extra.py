"""Clustering, assortativity, and component metrics."""

import pytest

from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.metrics import (
    average_clustering,
    degree_assortativity,
    weak_component_sizes,
)


def _triangle() -> DiffusionGraph:
    return DiffusionGraph(3, [(0, 1), (1, 2), (2, 0)]).freeze()


class TestAverageClustering:
    def test_triangle_is_fully_clustered(self):
        assert average_clustering(_triangle()) == pytest.approx(1.0)

    def test_chain_has_no_triangles(self, chain_graph):
        assert average_clustering(chain_graph) == 0.0

    def test_star_center_unclustered(self, star_graph):
        assert average_clustering(star_graph) == 0.0

    def test_empty_graph(self):
        assert average_clustering(DiffusionGraph(0)) == 0.0

    def test_lfr_more_clustered_than_mixed(self):
        tight = lfr_benchmark_graph(LFRParams(n=150, avg_degree=5, mixing=0.05), seed=0)
        loose = lfr_benchmark_graph(LFRParams(n=150, avg_degree=5, mixing=0.6), seed=0)
        assert average_clustering(tight) > average_clustering(loose)


class TestDegreeAssortativity:
    def test_pure_star_has_no_degree_variance(self, star_graph):
        # Every edge joins the degree-5 hub to a degree-1 leaf: both
        # endpoint sequences are constant, so the correlation is defined
        # as 0 rather than spuriously +/-1.
        assert degree_assortativity(star_graph) == 0.0

    def test_star_with_leaf_link_is_disassortative(self):
        graph = DiffusionGraph(
            6, [(0, i) for i in range(1, 6)] + [(1, 2)]
        ).freeze()
        assert degree_assortativity(graph) < 0

    def test_regular_graph_is_zero(self):
        # Directed 4-cycle: every endpoint degree identical -> no variance.
        cycle = DiffusionGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert degree_assortativity(cycle) == 0.0

    def test_empty_graph(self):
        assert degree_assortativity(DiffusionGraph(5)) == 0.0

    def test_bounded(self, small_er_graph):
        value = degree_assortativity(small_er_graph)
        assert -1.0 <= value <= 1.0


class TestWeakComponents:
    def test_single_component(self, chain_graph):
        assert weak_component_sizes(chain_graph) == [5]

    def test_direction_ignored(self):
        graph = DiffusionGraph(4, [(0, 1), (2, 1), (3, 2)])
        assert weak_component_sizes(graph) == [4]

    def test_isolated_nodes_are_singletons(self):
        graph = DiffusionGraph(5, [(0, 1)])
        assert weak_component_sizes(graph) == [2, 1, 1, 1]

    def test_sizes_sum_to_n(self, small_er_graph):
        sizes = weak_component_sizes(small_er_graph)
        assert sum(sizes) == small_er_graph.n_nodes
        assert sizes == sorted(sizes, reverse=True)

    def test_empty_graph(self):
        assert weak_component_sizes(DiffusionGraph(0)) == []
