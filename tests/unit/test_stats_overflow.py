"""Integer-width regression suite for the count algebra.

Externally constructed statistics — a deserialised shard, a tile read
back from disk, a user-built :class:`SufficientStats` — may carry int32
counts.  Before the ``_accumulator`` promotion, ``merged()`` added them
with numpy's dtype rules, so two shards whose counts sum past 2³¹ − 1
silently wrapped negative.  These tests pin the fix: count algebra
always runs in int64 accumulators, whatever width the operands arrived
in, and float operands (the decayed-window path) pass through unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stats import COUNT_KEYS, SufficientStats

#: A per-pair count close enough to INT32_MAX that one addition wraps.
NEAR_MAX = np.int32(2**31 - 10)


def _int32_stats(n=3, value=NEAR_MAX, beta=2**31 - 10):
    """Statistics as a narrow-width producer would hand them over."""
    return SufficientStats(
        counts={
            key: np.full((n, n), value, dtype=np.int32) for key in COUNT_KEYS
        },
        infected=np.full(n, value, dtype=np.int32),
        observed=np.full(n, value, dtype=np.int32),
        beta=int(beta),
        has_missing=False,
    )


class TestMergedPromotion:
    def test_merge_of_int32_shards_does_not_wrap(self):
        merged = _int32_stats().merged(_int32_stats())
        expected = 2 * int(NEAR_MAX)
        assert expected > 2**31  # the sum genuinely exceeds int32
        for key in COUNT_KEYS:
            assert merged.counts[key].dtype == np.int64
            assert np.all(merged.counts[key] == expected), key
        assert merged.infected.dtype == np.int64
        assert np.all(merged.infected == expected)
        assert np.all(merged.observed == expected)
        assert merged.beta == 2 * (2**31 - 10)

    def test_many_shard_accumulation_stays_exact(self):
        shard = _int32_stats(value=np.int32(2**30), beta=2**30)
        total = SufficientStats.zeros(3)
        for _ in range(8):
            total = total.merged(shard)
        assert np.all(total.counts["11"] == 8 * 2**30)  # = 2³³, > int32

    def test_mixed_width_operands_promote(self):
        wide = _int32_stats().merged(SufficientStats.zeros(3))
        assert wide.counts["11"].dtype == np.int64
        merged = wide.merged(_int32_stats())
        assert np.all(merged.counts["11"] == 2 * int(NEAR_MAX))

    def test_int16_operands_promote_too(self):
        n = 2
        small = SufficientStats(
            counts={
                key: np.full((n, n), 30_000, dtype=np.int16)
                for key in COUNT_KEYS
            },
            infected=np.full(n, 30_000, dtype=np.int16),
            observed=np.full(n, 30_000, dtype=np.int16),
            beta=30_000,
            has_missing=False,
        )
        merged = small.merged(small)
        assert merged.counts["obs"].dtype == np.int64
        assert np.all(merged.counts["obs"] == 60_000)  # > int16 range


class TestSubtractedPromotion:
    def test_subtracting_int32_operands_is_exact(self):
        total = _int32_stats().merged(_int32_stats())
        remainder = total.subtracted(_int32_stats())
        for key in COUNT_KEYS:
            assert np.all(remainder.counts[key] == int(NEAR_MAX)), key
        assert remainder.beta == 2**31 - 10

    def test_negative_guard_still_fires_after_promotion(self):
        small = _int32_stats(value=np.int32(5), beta=10)
        big = _int32_stats(value=np.int32(7), beta=10)
        from repro.exceptions import DataError

        with pytest.raises(DataError):
            small.subtracted(big)


class TestFloatPassThrough:
    def test_decayed_float_counts_are_not_promoted(self):
        n = 2
        decayed = SufficientStats(
            counts={
                key: np.full((n, n), 0.5, dtype=np.float64)
                for key in COUNT_KEYS
            },
            infected=np.full(n, 0.5, dtype=np.float64),
            observed=np.full(n, 0.5, dtype=np.float64),
            beta=1,
            has_missing=False,
        )
        merged = decayed.merged(decayed)
        assert merged.counts["11"].dtype == np.float64
        assert np.all(merged.counts["11"] == 1.0)
