"""Run manifests: builders, schema validation, file round-trips."""

import json

import numpy as np
import pytest

from repro.core.tends import Tends
from repro.exceptions import DataError
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    collect_environment,
    git_revision,
    load_manifest,
    manifest_for_fit,
    validate_manifest,
    write_manifest,
)
from repro.simulation.statuses import StatusMatrix


def _statuses(beta: int = 120, seed: int = 0) -> StatusMatrix:
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, beta)
    b = np.where(rng.random(beta) < 0.08, 1 - a, a)
    c = rng.integers(0, 2, beta)
    d = np.where(rng.random(beta) < 0.08, 1 - c, c)
    return StatusMatrix(np.column_stack([a, b, c, d]))


@pytest.fixture(scope="module")
def traced_fit():
    estimator = Tends(executor="serial", trace=True)
    return estimator, estimator.fit(_statuses())


class TestEnvironment:
    def test_collect_environment_keys(self):
        env = collect_environment()
        assert env["python"]
        assert env["numpy"]
        assert isinstance(env["cpu_count"], int)

    def test_git_revision_in_repo(self):
        info = git_revision()
        assert info is not None
        assert len(info["revision"]) == 40
        assert isinstance(info["dirty"], bool)

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(tmp_path) is None


class TestManifestForFit:
    def test_schema_and_contents(self, traced_fit):
        estimator, result = traced_fit
        document = manifest_for_fit(
            result,
            config=estimator.config,
            seeds={"bootstrap_seed": None},
            extra={"statuses": "in.csv"},
        )
        validate_manifest(document)
        assert document["format"] == MANIFEST_FORMAT
        assert document["kind"] == "tends.fit"
        assert {"imi", "threshold", "search"} <= set(document["stages"])
        assert all("/" not in stage for stage in document["stages"])
        assert document["workers"] == {"serial": pytest.approx(
            result.stage_seconds["search/serial"])}
        assert document["config"]["executor"] == "serial"
        assert document["config"]["trace"] is True
        assert document["result"]["n_nodes"] == 4
        assert document["result"]["n_edges"] == result.graph.n_edges
        assert document["result"]["threshold"] == result.threshold
        assert document["total_seconds"] == pytest.approx(
            sum(document["stages"].values()))
        assert document["extra"] == {"statuses": "in.csv"}

    def test_metrics_come_from_telemetry(self, traced_fit):
        _, result = traced_fit
        document = manifest_for_fit(result)
        counters = document["metrics"]["counters"]
        assert counters["tends_imi_pairs_total"] == 6
        assert "tends_score_evaluations_total" in counters

    def test_untraced_fit_gets_empty_metrics(self):
        result = Tends(executor="serial").fit(_statuses())
        document = manifest_for_fit(result)
        assert document["metrics"] == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        validate_manifest(document)

    def test_json_serialisable(self, traced_fit):
        estimator, result = traced_fit
        document = manifest_for_fit(result, config=estimator.config)
        json.dumps(document)  # must not raise


class TestValidation:
    def _valid(self, traced_fit):
        _, result = traced_fit
        return manifest_for_fit(result)

    def test_wrong_format_rejected(self, traced_fit):
        document = self._valid(traced_fit)
        document["format"] = "something.else"
        with pytest.raises(DataError, match="not a run manifest"):
            validate_manifest(document)

    def test_missing_key_rejected(self, traced_fit):
        document = self._valid(traced_fit)
        del document["stages"]
        with pytest.raises(DataError, match="missing required keys"):
            validate_manifest(document)

    def test_non_numeric_stage_rejected(self, traced_fit):
        document = self._valid(traced_fit)
        document["stages"]["imi"] = "fast"
        with pytest.raises(DataError, match="must be a number"):
            validate_manifest(document)

    def test_metrics_sections_required(self, traced_fit):
        document = self._valid(traced_fit)
        del document["metrics"]["histograms"]
        with pytest.raises(DataError, match="histograms"):
            validate_manifest(document)


class TestFileRoundTrip:
    def test_write_load_roundtrip(self, traced_fit, tmp_path):
        _, result = traced_fit
        document = manifest_for_fit(result)
        target = write_manifest(document, tmp_path / "nested" / "run.json")
        assert load_manifest(target) == json.loads(json.dumps(document))

    def test_write_validates_first(self, tmp_path):
        with pytest.raises(DataError):
            write_manifest({"format": "nope"}, tmp_path / "run.json")
        assert not (tmp_path / "run.json").exists()

    def test_load_rejects_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(DataError, match="invalid JSON"):
            load_manifest(bad)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="cannot read"):
            load_manifest(tmp_path / "absent.json")
