"""Unit tests for cached sufficient statistics and dirty-node updates.

Covers the :class:`SufficientStats` arithmetic itself plus the dirty/clean
split of :meth:`Tends.partial_fit`: a masked batch touching only one
community must leave the other community's parent sets untouched and skip
their searches entirely, and degenerate batches (empty, all-infected,
τ-flipping) must be absorbed gracefully and stay bit-identical to a
one-shot refit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stats import SufficientStats
from repro.core.tends import Tends
from repro.exceptions import ConfigurationError, DataError, InferenceError
from repro.simulation.statuses import StatusMatrix


def _random_statuses(beta, n, seed, mask_fraction=0.0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, size=(beta, n), dtype=np.uint8)
    mask = None
    if mask_fraction:
        mask = rng.random((beta, n)) >= mask_fraction
    return StatusMatrix(data, mask)


class TestSufficientStats:
    def test_from_statuses_matches_matrix_counts(self):
        statuses = _random_statuses(30, 6, seed=0)
        stats = SufficientStats.from_statuses(statuses)
        joints = statuses.joint_counts()
        for key in ("11", "10", "01", "00"):
            assert np.array_equal(stats.counts[key], joints[key])
        assert np.array_equal(stats.infected, statuses.infection_counts())
        assert stats.beta == 30
        assert stats.n_nodes == 6
        assert not stats.has_missing

    @pytest.mark.parametrize("mask_fraction", [0.0, 0.3])
    def test_updated_equals_recount_of_concatenation(self, mask_fraction):
        first = _random_statuses(20, 5, seed=1, mask_fraction=mask_fraction)
        second = _random_statuses(13, 5, seed=2, mask_fraction=mask_fraction)
        incremental = SufficientStats.from_statuses(first).updated(second)
        recounted = SufficientStats.from_statuses(first.append(second))
        assert incremental.equals(recounted)
        assert incremental.checksum() == recounted.checksum()

    def test_merged_is_order_sensitive_only_in_nothing(self):
        a = SufficientStats.from_statuses(_random_statuses(9, 4, seed=3))
        b = SufficientStats.from_statuses(_random_statuses(7, 4, seed=4))
        assert a.merged(b).equals(b.merged(a))

    def test_empty_batch_returns_self(self):
        stats = SufficientStats.from_statuses(_random_statuses(10, 4, seed=5))
        empty = StatusMatrix(np.empty((0, 4), dtype=np.uint8))
        assert stats.updated(empty) is stats

    def test_updated_is_copy_on_write(self):
        stats = SufficientStats.from_statuses(_random_statuses(10, 4, seed=6))
        before = stats.checksum()
        stats.updated(_random_statuses(5, 4, seed=7))
        assert stats.checksum() == before

    def test_node_count_mismatch_raises(self):
        stats = SufficientStats.from_statuses(_random_statuses(10, 4, seed=8))
        with pytest.raises(DataError):
            stats.updated(_random_statuses(5, 6, seed=9))
        with pytest.raises(DataError):
            stats.merged(
                SufficientStats.from_statuses(_random_statuses(5, 6, seed=9))
            )

    def test_mi_matrix_matches_from_scratch_estimate(self):
        from repro.core.imi import infection_mi_matrix, traditional_mi_matrix

        for mask_fraction in (0.0, 0.25):
            statuses = _random_statuses(
                40, 6, seed=10, mask_fraction=mask_fraction
            )
            stats = SufficientStats.from_statuses(statuses)
            assert np.array_equal(
                stats.mi_matrix("infection"), infection_mi_matrix(statuses)
            )
            assert np.array_equal(
                stats.mi_matrix("traditional"), traditional_mi_matrix(statuses)
            )
        with pytest.raises(DataError):
            stats.mi_matrix("nonsense")

    def test_zero_beta_mi_refused(self):
        empty = SufficientStats.from_statuses(
            StatusMatrix(np.empty((0, 3), dtype=np.uint8))
        )
        with pytest.raises(DataError):
            empty.mi_terms()

    def test_checksum_changes_with_counts(self):
        stats = SufficientStats.from_statuses(_random_statuses(10, 4, seed=11))
        updated = stats.updated(_random_statuses(3, 4, seed=12))
        assert stats.checksum() != updated.checksum()

    def test_equals_rejects_different_shapes_and_types(self):
        stats = SufficientStats.from_statuses(_random_statuses(10, 4, seed=13))
        other = SufficientStats.from_statuses(_random_statuses(10, 5, seed=13))
        assert not stats.equals(other)
        assert not stats.equals("not stats")


def _two_community_history(beta, seed):
    """12 nodes in two independent 6-node communities: within a community
    every node copies the community's coin flip, across communities the
    flips are independent."""
    rng = np.random.default_rng(seed)
    flips_a = rng.integers(0, 2, size=(beta, 1), dtype=np.uint8)
    flips_b = rng.integers(0, 2, size=(beta, 1), dtype=np.uint8)
    return StatusMatrix(
        np.hstack([np.repeat(flips_a, 6, axis=1), np.repeat(flips_b, 6, axis=1)])
    )


class TestDirtyNodeUpdates:
    #: Explicit τ so candidate sets depend only on each node's own MI row
    #: (an auto-selected τ would drift with every batch and dirty all
    #: nodes through global threshold movement).
    CONFIG = dict(threshold=0.05, audit="ignore")

    def test_masked_batch_touching_one_community_skips_the_other(self):
        history = _two_community_history(40, seed=0)
        estimator = Tends(trace=True, **self.CONFIG)
        first = estimator.fit(history)

        # A batch observing only community A (columns 0-5).
        rng = np.random.default_rng(1)
        batch_flips = rng.integers(0, 2, size=(10, 1), dtype=np.uint8)
        batch_data = np.hstack(
            [np.repeat(batch_flips, 6, axis=1), np.zeros((10, 6), np.uint8)]
        )
        batch_mask = np.zeros((10, 12), dtype=np.bool_)
        batch_mask[:, :6] = True
        batch = StatusMatrix(batch_data, batch_mask)

        result = estimator.partial_fit(batch)

        # Community B (nodes 6-11) is provably unaffected: warm-started,
        # searches skipped, parent sets bit-identical.
        assert result.update.clean_nodes == tuple(range(6, 12))
        assert set(result.update.dirty_nodes) <= set(range(6))
        assert result.parent_sets[6:] == first.parent_sets[6:]
        counters = result.telemetry.metrics["counters"]
        assert counters["tends_update_searches_skipped_total"] == 6
        assert counters["tends_update_nodes_clean_total"] == 6
        assert counters["tends_update_nodes_dirty_total"] == len(
            result.update.dirty_nodes
        )

        # And the skip is exactness-preserving: a one-shot fit on the
        # concatenated masked history agrees bit for bit.
        full = Tends(**self.CONFIG).fit(history.append(batch))
        assert result.parent_sets == full.parent_sets
        assert np.array_equal(result.mi_matrix, full.mi_matrix)
        assert result.threshold == full.threshold

    def test_empty_batch_is_a_no_op_update(self):
        history = _two_community_history(30, seed=2)
        estimator = Tends(**self.CONFIG)
        first = estimator.fit(history)
        result = estimator.partial_fit(np.empty((0, 12), dtype=np.uint8))
        assert result.update.n_dirty == 0
        assert result.update.n_skipped == 12
        assert result.update.batch_beta == 0
        assert not result.update.threshold_changed
        assert result.parent_sets == first.parent_sets
        assert np.array_equal(result.mi_matrix, first.mi_matrix)
        assert estimator.model.beta == 30

    def test_all_infected_batch_handled_gracefully(self):
        history = _two_community_history(30, seed=3)
        estimator = Tends(**self.CONFIG)
        estimator.fit(history)
        batch = StatusMatrix(np.ones((8, 12), dtype=np.uint8))
        result = estimator.partial_fit(batch)
        full = Tends(**self.CONFIG).fit(history.append(batch))
        assert result.parent_sets == full.parent_sets
        assert np.array_equal(result.mi_matrix, full.mi_matrix)
        # Unmasked batches observe every node, so nothing can be skipped.
        assert result.update.n_dirty == 12

    def test_tau_flipping_batch_stays_equivalent(self):
        # Auto-selected τ: a noise batch moves the whole MI distribution
        # and with it the 2-means threshold — every node goes dirty, and
        # the result still matches a full refit bit for bit.
        history = _two_community_history(40, seed=4)
        estimator = Tends(audit="ignore")
        first = estimator.fit(history)
        rng = np.random.default_rng(5)
        noise = StatusMatrix(
            rng.integers(0, 2, size=(25, 12), dtype=np.uint8)
        )
        result = estimator.partial_fit(noise)
        assert result.update.threshold_changed
        assert result.threshold != first.threshold
        full = Tends(audit="ignore").fit(history.append(noise))
        assert result.threshold == full.threshold
        assert result.parent_sets == full.parent_sets
        assert np.array_equal(result.mi_matrix, full.mi_matrix)

    def test_partial_fit_requires_a_fitted_model(self):
        with pytest.raises(InferenceError):
            Tends().partial_fit(np.zeros((3, 4), dtype=np.uint8))

    def test_bootstrap_configs_are_refused(self):
        statuses = _random_statuses(20, 5, seed=6)
        for config in (dict(threshold="stable"), dict(bootstrap_samples=10)):
            estimator = Tends(audit="ignore", **config)
            estimator.fit(statuses)
            assert estimator.model is None
            with pytest.raises(ConfigurationError):
                estimator.partial_fit(statuses)

    def test_node_count_mismatch_refused(self):
        estimator = Tends(**self.CONFIG)
        estimator.fit(_random_statuses(20, 5, seed=7))
        with pytest.raises(DataError):
            estimator.partial_fit(np.zeros((3, 7), dtype=np.uint8))

    def test_missing_policy_applies_to_batches(self):
        statuses = _random_statuses(20, 5, seed=8)
        masked_batch = _random_statuses(6, 5, seed=9, mask_fraction=0.4)

        refusing = Tends(audit="ignore", missing="refuse")
        refusing.fit(statuses)
        with pytest.raises(DataError):
            refusing.partial_fit(masked_batch)

        zero_filling = Tends(audit="ignore", missing="zero-fill")
        zero_filling.fit(statuses)
        result = zero_filling.partial_fit(masked_batch)
        full = Tends(audit="ignore", missing="zero-fill").fit(
            statuses.append(masked_batch.filled(0))
        )
        assert result.parent_sets == full.parent_sets
        assert np.array_equal(result.mi_matrix, full.mi_matrix)

    def test_update_emits_spans(self):
        estimator = Tends(trace=True, **self.CONFIG)
        estimator.fit(_two_community_history(30, seed=10))
        result = estimator.partial_fit(np.ones((4, 12), dtype=np.uint8))
        names = result.telemetry.span_names()
        for expected in (
            "tends.update",
            "tends.stats",
            "tends.imi",
            "tends.threshold",
            "tends.diff",
            "tends.search",
        ):
            assert expected in names
