"""Sampling profiler: capture, collapsed stacks, flamegraph, null path."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    Profile,
    SamplingProfiler,
    profile_for,
    profiled,
    render_flamegraph,
    write_flamegraph,
)
from repro.obs.trace import Tracer


def _busy_loop(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(i * i for i in range(2_000))
    return total


class TestSamplingProfiler:
    def test_captures_stacks_from_a_busy_thread(self):
        with SamplingProfiler(hz=250) as profiler:
            _busy_loop(time.perf_counter() + 0.3)
        profile = profiler.profile
        assert profile is not None
        assert profile.samples >= 1
        assert profile.duration >= 0.3
        assert profile.hz == 250
        assert sum(profile.stacks.values()) == profile.samples
        assert any("_busy_loop" in stack for stack in profile.stacks)

    def test_samples_background_threads_too(self):
        stop = threading.Event()

        def worker():
            while not stop.is_set():
                sum(i * i for i in range(2_000))

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        try:
            profile = profile_for(0.3, hz=250)
        finally:
            stop.set()
            thread.join()
        assert any("worker" in stack for stack in profile.stacks)

    def test_stop_without_start_raises(self):
        with pytest.raises(ConfigurationError, match="not running"):
            SamplingProfiler().stop()

    def test_double_start_raises(self):
        profiler = SamplingProfiler().start()
        try:
            with pytest.raises(ConfigurationError, match="already running"):
                profiler.start()
        finally:
            profiler.stop()

    @pytest.mark.parametrize("hz", [0, -1])
    def test_invalid_hz_rejected(self, hz):
        with pytest.raises(ConfigurationError, match="hz must be positive"):
            SamplingProfiler(hz=hz)

    def test_invalid_max_depth_rejected(self):
        with pytest.raises(ConfigurationError, match="max_depth"):
            SamplingProfiler(max_depth=0)

    def test_profile_for_rejects_nonpositive_seconds(self):
        with pytest.raises(ConfigurationError, match="seconds"):
            profile_for(0)

    def test_restartable_after_stop(self):
        profiler = SamplingProfiler(hz=300)
        with profiler:
            _busy_loop(time.perf_counter() + 0.1)
        first = profiler.profile
        with profiler:
            _busy_loop(time.perf_counter() + 0.1)
        # The second run starts from a clean slate.
        assert profiler.profile is not first


class TestProfileShape:
    def _profile(self):
        return Profile(
            stacks={"a;b;c": 5, "a;b;d": 3, "a;e": 2},
            samples=10,
            duration=1.0,
            hz=100.0,
        )

    def test_collapsed_is_busiest_first(self):
        lines = self._profile().collapsed().splitlines()
        assert lines == ["a;b;c 5", "a;b;d 3", "a;e 2"]

    def test_top_aggregates_leaf_self_samples(self):
        assert self._profile().top(2) == [("c", 5), ("d", 3)]

    def test_to_dict_is_json_shaped(self):
        payload = self._profile().to_dict()
        assert payload["samples"] == 10
        assert payload["duration_seconds"] == 1.0
        assert payload["stacks"]["a;b;c"] == 5
        assert ["c", 5] in payload["top"]

    def test_annotate_sets_span_attrs(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            self._profile().annotate(span)
        finished = tracer.finished()[0]
        assert finished.attrs["profile_samples"] == 10
        assert finished.attrs["profile_top"] == "c"

    def test_profiled_context_annotates_span(self):
        tracer = Tracer()
        with tracer.span("work") as span, profiled(span, hz=250) as prof:
            _busy_loop(time.perf_counter() + 0.2)
        assert prof.profile.samples >= 1
        assert "profile_samples" in tracer.finished()[0].attrs

    def test_profiled_disabled_is_null(self):
        with profiled(enabled=False) as prof:
            assert prof is NULL_PROFILER


class TestNullProfiler:
    def test_null_profiler_is_inert(self):
        null = NullProfiler()
        assert null.enabled is False
        with null as same:
            assert same is null
        profile = null.stop()
        assert profile.samples == 0 and profile.stacks == {}


class TestFlamegraph:
    def test_svg_structure_and_tooltips(self):
        svg = render_flamegraph(
            {"main;fit;imi": 6, "main;fit;search": 4}, title="test run"
        )
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "test run — 10 samples" in svg
        assert "main: 10 samples (100.0%)" in svg
        assert "imi: 6 samples (60.0%)" in svg

    def test_empty_profile_renders_placeholder(self):
        svg = render_flamegraph({})
        assert "no samples captured" in svg

    def test_render_is_deterministic(self):
        stacks = {"a;b": 3, "a;c": 1}
        assert render_flamegraph(stacks) == render_flamegraph(stacks)

    def test_tiny_frames_are_pruned(self):
        stacks = {"big;leaf": 10_000, "tiny;leaf": 1}
        svg = render_flamegraph(stacks, min_fraction=0.01)
        assert "big" in svg and ">tiny:" not in svg

    def test_write_creates_parents(self, tmp_path):
        target = write_flamegraph({"a;b": 1}, tmp_path / "deep" / "flame.svg")
        assert target.exists()
        assert "<svg" in target.read_text()
