"""The stage-3 execution backend: plans, chunking, and strategy equivalence."""

from __future__ import annotations

import os

import pytest

from repro.core.executor import (
    ENV_EXECUTOR,
    ENV_N_JOBS,
    EXECUTOR_STRATEGIES,
    ExecutionPlan,
    ParallelExecutor,
    WorkerStats,
    execution_env,
    split_chunks,
)
from repro.exceptions import ConfigurationError


def _square_chunk(offset: int, items: list[int]) -> list[int]:
    """Module-level so the process backend can pickle it by reference."""
    return [offset + item * item for item in items]


class TestExecutionPlan:
    def test_defaults_are_serial(self):
        plan = ExecutionPlan.resolve()
        assert plan.strategy == "serial"
        assert plan.n_jobs == 1

    def test_serial_forces_single_worker(self):
        plan = ExecutionPlan.resolve("serial", n_jobs=8)
        assert plan.n_jobs == 1

    def test_all_cpus_sentinel(self):
        plan = ExecutionPlan.resolve("thread", n_jobs=-1)
        assert plan.n_jobs == (os.cpu_count() or 1)

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "thread")
        monkeypatch.setenv(ENV_N_JOBS, "3")
        plan = ExecutionPlan.resolve()
        assert plan.strategy == "thread"
        assert plan.n_jobs == 3

    def test_explicit_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "process")
        monkeypatch.setenv(ENV_N_JOBS, "8")
        plan = ExecutionPlan.resolve("serial", n_jobs=1)
        assert plan.strategy == "serial"
        assert plan.n_jobs == 1

    def test_malformed_env_n_jobs_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_N_JOBS, "four")
        with pytest.raises(ConfigurationError, match="REPRO_N_JOBS"):
            ExecutionPlan.resolve()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionPlan.resolve("gpu")
        with pytest.raises(ConfigurationError):
            ExecutionPlan(strategy="gpu", n_jobs=1)

    def test_bad_n_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionPlan.resolve("thread", n_jobs=0)
        with pytest.raises(ConfigurationError):
            ExecutionPlan.resolve("thread", n_jobs=-2)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionPlan(strategy="serial", n_jobs=1, chunk_size=0)

    def test_effective_chunk_size_explicit(self):
        plan = ExecutionPlan("thread", n_jobs=4, chunk_size=5)
        assert plan.effective_chunk_size(100) == 5

    def test_effective_chunk_size_auto_oversubscribes(self):
        plan = ExecutionPlan("thread", n_jobs=4)
        size = plan.effective_chunk_size(160)
        assert 1 <= size <= 160
        # ~4 chunks per worker for load balancing
        assert -(-160 // size) >= 4

    def test_effective_chunk_size_single_worker_is_one_chunk(self):
        plan = ExecutionPlan("serial", n_jobs=1)
        assert plan.effective_chunk_size(50) == 50
        assert plan.effective_chunk_size(0) == 1


class TestSplitChunks:
    def test_exact_partition(self):
        chunks = split_chunks(10, 3)
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_covers_every_index_once(self):
        for n_items in (0, 1, 7, 32):
            for chunk_size in (1, 2, 5, 100):
                flat = [i for chunk in split_chunks(n_items, chunk_size) for i in chunk]
                assert flat == list(range(n_items))

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ConfigurationError):
            split_chunks(10, 0)


class TestExecutionEnv:
    def test_sets_and_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        monkeypatch.setenv(ENV_N_JOBS, "7")
        with execution_env(executor="thread", n_jobs=2):
            assert os.environ[ENV_EXECUTOR] == "thread"
            assert os.environ[ENV_N_JOBS] == "2"
        assert ENV_EXECUTOR not in os.environ
        assert os.environ[ENV_N_JOBS] == "7"

    def test_none_leaves_env_alone(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "process")
        with execution_env():
            assert os.environ[ENV_EXECUTOR] == "process"


class TestParallelExecutorMap:
    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES)
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_strategies_agree_with_serial(self, strategy, n_jobs):
        items = list(range(23))
        expected = [100 + i * i for i in items]
        plan = ExecutionPlan.resolve(strategy, n_jobs=n_jobs, chunk_size=4)
        results, stats = ParallelExecutor(plan).map(_square_chunk, 100, items)
        assert results == expected
        assert sum(s.n_items for s in stats) == len(items)
        assert sum(s.n_chunks for s in stats) == 6
        assert all(isinstance(s, WorkerStats) for s in stats)
        assert all(s.seconds >= 0.0 for s in stats)

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES)
    def test_empty_items(self, strategy):
        plan = ExecutionPlan.resolve(strategy, n_jobs=2)
        results, stats = ParallelExecutor(plan).map(_square_chunk, 0, [])
        assert results == []
        assert stats == []

    def test_serial_worker_label(self):
        plan = ExecutionPlan.resolve()
        _, stats = ParallelExecutor(plan).map(_square_chunk, 0, [1, 2, 3])
        assert [s.worker for s in stats] == ["serial"]

    def test_thread_worker_labels_are_stable(self):
        plan = ExecutionPlan.resolve("thread", n_jobs=3, chunk_size=1)
        _, stats = ParallelExecutor(plan).map(_square_chunk, 0, list(range(9)))
        assert all(s.worker.startswith("thread-") for s in stats)
        assert len({s.worker for s in stats}) == len(stats)

    def test_process_worker_labels_are_stable(self):
        plan = ExecutionPlan.resolve("process", n_jobs=2, chunk_size=2)
        _, stats = ParallelExecutor(plan).map(_square_chunk, 0, list(range(8)))
        assert all(s.worker.startswith("process-") for s in stats)
        assert len({s.worker for s in stats}) == len(stats)

    def test_worker_exception_propagates(self):
        def boom(context, items):
            raise ValueError("worker failed")

        plan = ExecutionPlan.resolve("thread", n_jobs=2)
        with pytest.raises(ValueError, match="worker failed"):
            ParallelExecutor(plan).map(boom, None, [1, 2, 3])

    def test_results_preserve_order_with_uneven_chunks(self):
        items = list(range(31))
        plan = ExecutionPlan.resolve("thread", n_jobs=4, chunk_size=3)
        results, _ = ParallelExecutor(plan).map(_square_chunk, 0, items)
        assert results == [i * i for i in items]


class TestRetryPolicyJitter:
    def test_zero_jitter_is_pure_exponential(self):
        from repro.core.executor import RetryPolicy

        policy = RetryPolicy(backoff_seconds=0.1, backoff_multiplier=2.0, jitter=0.0)
        assert [policy.delay(f) for f in range(4)] == [0.0, 0.1, 0.2, 0.4]

    def test_jittered_sequence_is_deterministic(self):
        from repro.core.executor import RetryPolicy

        policy = RetryPolicy(backoff_seconds=0.1, jitter=0.5, jitter_seed=7)
        again = RetryPolicy(backoff_seconds=0.1, jitter=0.5, jitter_seed=7)
        sequence = [policy.delay(f, token=3) for f in range(1, 5)]
        assert sequence == [again.delay(f, token=3) for f in range(1, 5)]

    def test_jitter_stays_within_the_backoff_envelope(self):
        from repro.core.executor import RetryPolicy

        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_multiplier=2.0, jitter=0.5
        )
        for failures in range(1, 6):
            base = 0.1 * 2.0 ** (failures - 1)
            for token in range(20):
                delay = policy.delay(failures, token=token)
                assert base * 0.5 <= delay <= base

    def test_distinct_tokens_desynchronise(self):
        from repro.core.executor import RetryPolicy

        policy = RetryPolicy(backoff_seconds=0.1, jitter=0.5)
        delays = {policy.delay(1, token=t) for t in range(16)}
        assert len(delays) > 8  # chunks don't retry in lockstep

    def test_distinct_seeds_decorrelate(self):
        from repro.core.executor import RetryPolicy

        a = RetryPolicy(backoff_seconds=0.1, jitter=0.5, jitter_seed=1)
        b = RetryPolicy(backoff_seconds=0.1, jitter=0.5, jitter_seed=2)
        assert [a.delay(1, t) for t in range(8)] != [b.delay(1, t) for t in range(8)]

    def test_jitter_bounds_are_validated(self):
        from repro.core.executor import RetryPolicy

        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=-0.1)
