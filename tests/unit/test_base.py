"""Observations bundle and the shared inferrer interface."""

import numpy as np
import pytest

from repro.baselines.base import (
    InferenceOutput,
    NetworkInferrer,
    Observations,
    TendsInferrer,
)
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.cascades import Cascade, CascadeSet
from repro.simulation.statuses import StatusMatrix


class TestObservations:
    def test_from_simulation_has_all_views(self, small_observations):
        obs = Observations.from_simulation(small_observations)
        assert obs.available() == {"statuses", "cascades", "seed_sets"}
        assert obs.beta == small_observations.beta

    def test_from_statuses_minimal(self, tiny_statuses):
        obs = Observations.from_statuses(tiny_statuses)
        assert obs.available() == {"statuses"}
        assert obs.n_nodes == 3

    def test_node_count_mismatch_rejected(self, tiny_statuses):
        with pytest.raises(DataError):
            Observations(n_nodes=5, statuses=tiny_statuses)

    def test_cascade_node_count_mismatch_rejected(self, tiny_statuses):
        cascades = CascadeSet(7, [Cascade({0: 0.0})])
        with pytest.raises(DataError):
            Observations(n_nodes=3, statuses=tiny_statuses, cascades=cascades)

    def test_seed_set_count_mismatch_rejected(self, tiny_statuses):
        with pytest.raises(DataError):
            Observations(
                n_nodes=3, statuses=tiny_statuses, seed_sets=(frozenset({0}),)
            )


class TestInferenceOutput:
    def test_n_edges(self, chain_graph):
        assert InferenceOutput(graph=chain_graph).n_edges == 4

    def test_scores_optional(self, chain_graph):
        output = InferenceOutput(graph=chain_graph, edge_scores={(0, 1): 0.5})
        assert output.edge_scores[(0, 1)] == 0.5


class TestNetworkInferrerContract:
    def test_missing_view_message(self, tiny_statuses):
        class NeedsCascades(NetworkInferrer):
            name = "X"
            requires = frozenset({"cascades"})

            def infer(self, observations):
                self.check_applicable(observations)

        with pytest.raises(DataError, match="cascades"):
            NeedsCascades().infer(Observations.from_statuses(tiny_statuses))

    def test_repr(self):
        assert "TENDS" in repr(TendsInferrer())


class TestTendsInferrer:
    def test_runs_on_statuses_only(self, small_observations):
        obs = Observations.from_statuses(small_observations.statuses)
        output = TendsInferrer().infer(obs)
        assert output.graph.n_nodes == obs.n_nodes
        assert output.edge_scores is None

    def test_keeps_last_result(self, small_observations):
        inferrer = TendsInferrer()
        assert inferrer.last_result is None
        inferrer.infer(Observations.from_statuses(small_observations.statuses))
        assert inferrer.last_result is not None
        assert inferrer.last_result.threshold >= 0.0

    def test_forwards_overrides(self, small_observations):
        inferrer = TendsInferrer(threshold=100.0)
        output = inferrer.infer(
            Observations.from_statuses(small_observations.statuses)
        )
        assert output.n_edges == 0
