"""DiffusionGraph data-structure behaviour."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.digraph import DiffusionGraph


class TestConstruction:
    def test_empty(self):
        graph = DiffusionGraph(0)
        assert graph.n_nodes == 0
        assert graph.n_edges == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            DiffusionGraph(-1)

    def test_edges_in_constructor(self):
        graph = DiffusionGraph(3, [(0, 1), (1, 2)])
        assert graph.n_edges == 2

    def test_duplicate_edges_collapse(self):
        graph = DiffusionGraph(3, [(0, 1), (0, 1), (0, 1)])
        assert graph.n_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            DiffusionGraph(3, [(1, 1)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(GraphError):
            DiffusionGraph(3, [(0, 3)])
        with pytest.raises(GraphError):
            DiffusionGraph(3, [(-1, 0)])


class TestMutation:
    def test_add_edge_returns_newness(self):
        graph = DiffusionGraph(3)
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(0, 1) is False

    def test_add_edges_counts_new_only(self):
        graph = DiffusionGraph(4)
        assert graph.add_edges([(0, 1), (0, 1), (1, 2)]) == 2

    def test_remove_edge(self):
        graph = DiffusionGraph(3, [(0, 1)])
        assert graph.remove_edge(0, 1) is True
        assert graph.remove_edge(0, 1) is False
        assert graph.n_edges == 0

    def test_remove_updates_predecessors(self):
        graph = DiffusionGraph(3, [(0, 2), (1, 2)])
        graph.remove_edge(0, 2)
        assert graph.predecessors(2).tolist() == [1]

    def test_frozen_graph_rejects_mutation(self):
        graph = DiffusionGraph(3, [(0, 1)]).freeze()
        with pytest.raises(GraphError):
            graph.add_edge(1, 2)
        with pytest.raises(GraphError):
            graph.remove_edge(0, 1)

    def test_copy_is_mutable_and_independent(self):
        graph = DiffusionGraph(3, [(0, 1)]).freeze()
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert clone.n_edges == 2
        assert graph.n_edges == 1


class TestQueries:
    def test_successors_sorted(self):
        graph = DiffusionGraph(5, [(0, 4), (0, 1), (0, 3)])
        assert graph.successors(0).tolist() == [1, 3, 4]

    def test_predecessors_sorted(self):
        graph = DiffusionGraph(5, [(4, 2), (1, 2), (3, 2)])
        assert graph.predecessors(2).tolist() == [1, 3, 4]

    def test_frozen_adjacency_cached_arrays(self):
        graph = DiffusionGraph(3, [(0, 1), (0, 2)]).freeze()
        first = graph.successors(0)
        second = graph.successors(0)
        assert first is second  # cached array identity

    def test_degrees(self, star_graph):
        assert star_graph.out_degree(0) == 5
        assert star_graph.in_degree(1) == 1
        assert star_graph.out_degrees().tolist() == [5, 0, 0, 0, 0, 0]
        assert star_graph.in_degrees().tolist() == [0, 1, 1, 1, 1, 1]

    def test_has_edge(self, chain_graph):
        assert chain_graph.has_edge(0, 1)
        assert not chain_graph.has_edge(1, 0)

    def test_node_range_check(self, chain_graph):
        with pytest.raises(GraphError):
            chain_graph.successors(99)

    def test_edges_lexicographic(self):
        graph = DiffusionGraph(3, [(2, 0), (0, 2), (0, 1)])
        assert list(graph.edges()) == [(0, 1), (0, 2), (2, 0)]

    def test_edge_set_and_array(self, chain_graph):
        assert chain_graph.edge_set() == frozenset({(0, 1), (1, 2), (2, 3), (3, 4)})
        array = chain_graph.edge_array()
        assert array.shape == (4, 2)

    def test_empty_edge_array(self):
        assert DiffusionGraph(3).edge_array().shape == (0, 2)

    def test_adjacency_matrix(self, chain_graph):
        matrix = chain_graph.adjacency_matrix()
        assert matrix.dtype == np.bool_
        assert matrix[0, 1] and not matrix[1, 0]
        assert matrix.sum() == 4

    def test_reverse(self, chain_graph):
        reversed_graph = chain_graph.reverse()
        assert reversed_graph.has_edge(1, 0)
        assert reversed_graph.n_edges == chain_graph.n_edges

    def test_induced_subgraph_relabels(self, chain_graph):
        subgraph = chain_graph.induced_subgraph([1, 2, 4])
        # Old edge (1, 2) survives as (0, 1); 4 has no selected neighbour.
        assert subgraph.n_nodes == 3
        assert subgraph.edge_set() == {(0, 1)}

    def test_induced_subgraph_order_defines_labels(self, chain_graph):
        subgraph = chain_graph.induced_subgraph([2, 1])
        assert subgraph.edge_set() == {(1, 0)}  # old (1, 2) -> new (1, 0)

    def test_induced_subgraph_full_selection_is_identity(self, chain_graph):
        subgraph = chain_graph.induced_subgraph(range(5))
        assert subgraph.edge_set() == chain_graph.edge_set()

    def test_induced_subgraph_validates_nodes(self, chain_graph):
        with pytest.raises(GraphError):
            chain_graph.induced_subgraph([0, 99])


class TestInterop:
    def test_networkx_round_trip(self, small_er_graph):
        nx_graph = small_er_graph.to_networkx()
        back = DiffusionGraph.from_networkx(nx_graph)
        assert back == small_er_graph.copy()

    def test_from_networkx_undirected_doubles_edges(self):
        import networkx as nx

        undirected = nx.Graph([(0, 1), (1, 2)])
        graph = DiffusionGraph.from_networkx(undirected)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert graph.n_edges == 4

    def test_from_networkx_requires_contiguous_ids(self):
        import networkx as nx

        with pytest.raises(GraphError):
            DiffusionGraph.from_networkx(nx.DiGraph([(0, 5)]))

    def test_adjacency_matrix_round_trip(self, small_er_graph):
        matrix = small_er_graph.adjacency_matrix()
        back = DiffusionGraph.from_adjacency_matrix(matrix)
        assert back.edge_set() == small_er_graph.edge_set()

    def test_from_adjacency_rejects_non_square(self):
        with pytest.raises(GraphError):
            DiffusionGraph.from_adjacency_matrix(np.zeros((2, 3)))

    def test_from_adjacency_ignores_diagonal(self):
        matrix = np.eye(3)
        graph = DiffusionGraph.from_adjacency_matrix(matrix)
        assert graph.n_edges == 0


class TestDunders:
    def test_equality(self):
        a = DiffusionGraph(3, [(0, 1)])
        b = DiffusionGraph(3, [(0, 1)])
        c = DiffusionGraph(3, [(1, 0)])
        assert a == b
        assert a != c
        assert a != "not a graph"

    def test_repr_mentions_state(self):
        graph = DiffusionGraph(3, [(0, 1)])
        assert "mutable" in repr(graph)
        graph.freeze()
        assert "frozen" in repr(graph)
