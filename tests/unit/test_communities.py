"""Label-propagation communities and modularity."""

import numpy as np
import pytest

from repro.analysis.communities import label_propagation_communities, modularity
from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph


def _two_cliques(k: int = 5) -> DiffusionGraph:
    """Two k-cliques joined by a single edge."""
    graph = DiffusionGraph(2 * k)
    for offset in (0, k):
        for i in range(k):
            for j in range(k):
                if i != j:
                    graph.add_edge(offset + i, offset + j)
    graph.add_edge(0, k)
    return graph.freeze()


class TestLabelPropagation:
    def test_separates_two_cliques(self):
        graph = _two_cliques()
        labels = label_propagation_communities(graph, seed=0)
        first = set(labels[:5].tolist())
        second = set(labels[5:].tolist())
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    def test_labels_renumbered_contiguously(self):
        labels = label_propagation_communities(_two_cliques(), seed=1)
        assert set(labels.tolist()) == set(range(len(set(labels.tolist()))))

    def test_isolated_nodes_singletons(self):
        graph = DiffusionGraph(4, [(0, 1), (1, 0)]).freeze()
        labels = label_propagation_communities(graph, seed=0)
        assert labels[0] == labels[1]
        assert labels[2] != labels[3]
        assert labels[2] != labels[0]

    def test_empty_graph(self):
        labels = label_propagation_communities(DiffusionGraph(0))
        assert labels.shape == (0,)

    def test_lfr_graph_is_modular(self):
        graph = lfr_benchmark_graph(
            LFRParams(n=150, avg_degree=6, mixing=0.05), seed=2
        )
        labels = label_propagation_communities(graph, seed=3)
        assert modularity(graph, labels) > 0.3
        assert len(set(labels.tolist())) >= 2


class TestModularity:
    def test_perfect_partition_of_cliques(self):
        graph = _two_cliques()
        labels = np.array([0] * 5 + [1] * 5)
        assert modularity(graph, labels) > 0.4

    def test_single_community_is_zero(self):
        graph = _two_cliques()
        labels = np.zeros(10, dtype=np.int64)
        assert modularity(graph, labels) == pytest.approx(0.0)

    def test_bad_partition_scores_lower(self):
        graph = _two_cliques()
        good = np.array([0] * 5 + [1] * 5)
        bad = np.array([0, 1] * 5)
        assert modularity(graph, good) > modularity(graph, bad)

    def test_edgeless_graph(self):
        assert modularity(DiffusionGraph(3), np.zeros(3, dtype=np.int64)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            modularity(_two_cliques(), np.zeros(3, dtype=np.int64))
