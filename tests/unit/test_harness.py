"""Experiment harness: specs, deterministic seeding, aggregation."""

import pytest

from repro.baselines.base import TendsInferrer
from repro.evaluation.harness import (
    ExperimentSpec,
    MethodSpec,
    SweepPoint,
    default_methods,
    run_experiment,
)
from repro.exceptions import ConfigurationError
from repro.graphs.generators.random_graphs import erdos_renyi_digraph


def _tiny_spec(replicates: int = 1) -> ExperimentSpec:
    points = tuple(
        SweepPoint(
            label=f"n={n}",
            value=n,
            graph_factory=lambda seed, n=n: erdos_renyi_digraph(n, 0.15, seed=seed),
            beta=40,
        )
        for n in (12, 16)
    )
    methods = (
        MethodSpec("TENDS", lambda ctx: TendsInferrer()),
        *default_methods(include=("LIFT",)),
    )
    return ExperimentSpec(
        experiment_id="tiny",
        title="Tiny",
        x_label="n",
        points=points,
        methods=methods,
        replicates=replicates,
    )


class TestSpecValidation:
    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("x", "t", "x", points=(), methods=default_methods())

    def test_empty_methods_rejected(self):
        point = SweepPoint("p", 1, lambda seed: erdos_renyi_digraph(5, 0.3, seed=seed))
        with pytest.raises(ConfigurationError):
            ExperimentSpec("x", "t", "x", points=(point,), methods=())

    def test_bad_replicates_rejected(self):
        point = SweepPoint("p", 1, lambda seed: erdos_renyi_digraph(5, 0.3, seed=seed))
        with pytest.raises(ConfigurationError):
            ExperimentSpec(
                "x", "t", "x", points=(point,), methods=default_methods(), replicates=0
            )


class TestDefaultMethods:
    def test_paper_roster(self):
        names = [m.name for m in default_methods()]
        assert names == ["TENDS", "NetRate", "MulTree", "LIFT"]

    def test_netrate_gets_best_threshold(self):
        methods = {m.name: m for m in default_methods()}
        assert methods["NetRate"].best_threshold
        assert not methods["TENDS"].best_threshold

    def test_extensions_available(self):
        names = [m.name for m in default_methods(include=("NetInf", "CORR"))]
        assert names == ["NetInf", "CORR"]

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            default_methods(include=("Photoshop",))

    def test_tends_overrides_forwarded(self):
        from repro.graphs.digraph import DiffusionGraph
        from repro.evaluation.harness import MethodContext
        from repro.baselines.base import Observations
        from repro.simulation.statuses import StatusMatrix

        methods = {
            m.name: m
            for m in default_methods(
                include=("TENDS",),
                tends_overrides={"executor": "thread", "n_jobs": 2, "mi_kind": "traditional"},
            )
        }
        context = MethodContext(
            truth=DiffusionGraph(3).freeze(),
            observations=Observations.from_statuses(
                StatusMatrix([[0, 1, 0], [1, 0, 1]])
            ),
        )
        inferrer = methods["TENDS"].factory(context)
        assert inferrer._estimator.config.executor == "thread"
        assert inferrer._estimator.config.n_jobs == 2
        assert inferrer._estimator.config.mi_kind == "traditional"


class TestRunExperiment:
    def test_result_count(self):
        result = run_experiment(_tiny_spec(replicates=2), seed=0)
        # 2 points x 2 replicates x 2 methods
        assert len(result.results) == 8

    def test_deterministic(self):
        a = run_experiment(_tiny_spec(), seed=1)
        b = run_experiment(_tiny_spec(), seed=1)
        assert [r.f_score for r in a.results] == [r.f_score for r in b.results]

    def test_seed_changes_data(self):
        a = run_experiment(_tiny_spec(), seed=1)
        b = run_experiment(_tiny_spec(), seed=2)
        assert [r.f_score for r in a.results] != [r.f_score for r in b.results]

    def test_runtime_recorded(self):
        result = run_experiment(_tiny_spec(), seed=0)
        assert all(r.runtime_seconds >= 0 for r in result.results)

    def test_progress_callback(self):
        messages: list[str] = []
        run_experiment(_tiny_spec(), seed=0, progress=messages.append)
        assert len(messages) == 4
        assert all("tiny" in m for m in messages)

    def test_aggregation(self):
        result = run_experiment(_tiny_spec(replicates=2), seed=0)
        rows = result.aggregated()
        assert len(rows) == 4  # 2 points x 2 methods
        for row in rows:
            assert row["replicates"] == 2
            assert row["f_score_min"] <= row["f_score"] <= row["f_score_max"]

    def test_series_ordering(self):
        result = run_experiment(_tiny_spec(), seed=0)
        series = result.series("f_score")
        assert set(series) == {"TENDS", "LIFT"}
        assert all(len(v) == 2 for v in series.values())

    def test_methods_listing_preserves_order(self):
        result = run_experiment(_tiny_spec(), seed=0)
        assert result.methods() == ["TENDS", "LIFT"]
