"""Evaluation metrics: F-score, best-threshold sweep, PR curve."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    EdgeMetrics,
    average_precision,
    best_threshold_metrics,
    evaluate_edges,
    precision_recall_curve,
)
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph


class TestEdgeMetrics:
    def test_perfect(self):
        metrics = EdgeMetrics(10, 0, 0)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f_score == 1.0

    def test_zero_predictions(self):
        metrics = EdgeMetrics(0, 0, 5)
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f_score == 0.0

    def test_harmonic_mean(self):
        metrics = EdgeMetrics(1, 1, 1)  # P = R = 0.5
        assert metrics.f_score == pytest.approx(0.5)

    def test_as_row(self):
        row = EdgeMetrics(2, 1, 1).as_row()
        assert row["tp"] == 2
        assert row["precision"] == pytest.approx(2 / 3, abs=1e-4)


class TestEvaluateEdges:
    def test_directed_exact(self, chain_graph):
        predicted = [(0, 1), (1, 2), (4, 3)]
        metrics = evaluate_edges(chain_graph, predicted)
        assert metrics.true_positives == 2
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 2

    def test_graph_inputs(self, chain_graph):
        metrics = evaluate_edges(chain_graph, chain_graph)
        assert metrics.f_score == 1.0

    def test_undirected_mode(self, chain_graph):
        predicted = [(1, 0), (2, 1)]  # all reversed
        directed = evaluate_edges(chain_graph, predicted)
        undirected = evaluate_edges(chain_graph, predicted, undirected=True)
        assert directed.true_positives == 0
        assert undirected.true_positives == 2

    def test_undirected_collapses_reciprocal_pairs(self, reciprocal_pair):
        metrics = evaluate_edges(reciprocal_pair, [(0, 1)], undirected=True)
        assert metrics.true_positives == 1
        assert metrics.false_negatives == 0

    def test_empty_prediction(self, chain_graph):
        metrics = evaluate_edges(chain_graph, [])
        assert metrics.f_score == 0.0


class TestBestThreshold:
    def test_finds_optimal_prefix(self, chain_graph):
        scores = {
            (0, 1): 0.9,
            (1, 2): 0.8,
            (2, 3): 0.7,
            (3, 4): 0.6,
            (0, 4): 0.5,  # false edge ranked last
        }
        metrics, threshold = best_threshold_metrics(chain_graph, scores)
        assert metrics.f_score == 1.0
        assert threshold == pytest.approx(0.6)

    def test_beats_full_set_when_noise_ranked_low(self, chain_graph):
        scores = {(0, 1): 0.9, (4, 0): 0.1, (4, 1): 0.1}
        metrics, _ = best_threshold_metrics(chain_graph, scores)
        full = evaluate_edges(chain_graph, scores.keys())
        assert metrics.f_score >= full.f_score

    def test_empty_truth_rejected(self):
        with pytest.raises(DataError):
            best_threshold_metrics(DiffusionGraph(3), {(0, 1): 1.0})

    def test_empty_scores(self, chain_graph):
        metrics, threshold = best_threshold_metrics(chain_graph, {})
        assert metrics.f_score == 0.0
        assert threshold == float("inf")


class TestAveragePrecision:
    def test_perfect_ranking(self, chain_graph):
        scores = {(0, 1): 0.9, (1, 2): 0.8, (2, 3): 0.7, (3, 4): 0.6, (4, 0): 0.1}
        assert average_precision(chain_graph, scores) == pytest.approx(1.0)

    def test_inverted_ranking_scores_low(self, chain_graph):
        scores = {
            (4, 0): 0.9,
            (4, 1): 0.8,
            (4, 2): 0.7,
            (0, 1): 0.1,
            (1, 2): 0.05,
        }
        assert average_precision(chain_graph, scores) < 0.25

    def test_unranked_true_edges_lose_recall_mass(self, chain_graph):
        scores = {(0, 1): 0.9}  # only 1 of 4 true edges ranked
        assert average_precision(chain_graph, scores) == pytest.approx(0.25)

    def test_empty_truth_rejected(self):
        with pytest.raises(DataError):
            average_precision(DiffusionGraph(3), {(0, 1): 1.0})

    def test_bounded(self, chain_graph):
        import numpy as np

        rng = np.random.default_rng(0)
        scores = {
            (int(u), int(v)): float(rng.random())
            for u in range(5)
            for v in range(5)
            if u != v
        }
        value = average_precision(chain_graph, scores)
        assert 0.0 <= value <= 1.0


class TestPrecisionRecallCurve:
    def test_shape_and_monotone_recall(self, chain_graph):
        scores = {(0, 1): 0.9, (1, 2): 0.8, (0, 3): 0.7}
        curve = precision_recall_curve(chain_graph, scores)
        assert curve.shape == (3, 3)
        recalls = curve[:, 2]
        assert (np.diff(recalls) >= 0).all()

    def test_first_row_is_top_edge(self, chain_graph):
        scores = {(0, 1): 0.9, (4, 0): 0.2}
        curve = precision_recall_curve(chain_graph, scores)
        assert curve[0, 0] == pytest.approx(0.9)
        assert curve[0, 1] == 1.0  # top edge is a true positive

    def test_empty_truth_rejected(self):
        with pytest.raises(DataError):
            precision_recall_curve(DiffusionGraph(2), {(0, 1): 1.0})
