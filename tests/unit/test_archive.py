"""Experiment-result JSON persistence."""

import json

import pytest

from repro.baselines.base import TendsInferrer
from repro.evaluation.archive import (
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)
from repro.evaluation.harness import (
    ExperimentSpec,
    MethodSpec,
    SweepPoint,
    run_experiment,
)
from repro.evaluation.reporting import format_result_table
from repro.evaluation.shapes import check_figure_shapes
from repro.exceptions import DataError
from repro.graphs.generators.random_graphs import erdos_renyi_digraph


@pytest.fixture(scope="module")
def small_result():
    spec = ExperimentSpec(
        experiment_id="archive-demo",
        title="Archive demo",
        x_label="n",
        points=tuple(
            SweepPoint(
                label=f"n={n}",
                value=n,
                graph_factory=lambda s, n=n: erdos_renyi_digraph(n, 0.2, seed=s),
                beta=30,
            )
            for n in (10, 14)
        ),
        methods=(MethodSpec("TENDS", lambda ctx: TendsInferrer()),),
        replicates=2,
    )
    return run_experiment(spec, seed=5)


class TestRoundTrip:
    def test_json_round_trip_preserves_measurements(self, small_result):
        document = result_to_json(small_result)
        rebuilt = result_from_json(document)
        assert rebuilt.aggregated() == small_result.aggregated()
        assert rebuilt.series("f_score") == small_result.series("f_score")
        assert rebuilt.series("runtime_s") == small_result.series("runtime_s")

    def test_spec_metadata_preserved(self, small_result):
        rebuilt = result_from_json(result_to_json(small_result))
        assert rebuilt.spec.experiment_id == "archive-demo"
        assert rebuilt.spec.title == "Archive demo"
        assert rebuilt.spec.replicates == 2
        assert [p.label for p in rebuilt.spec.points] == ["n=10", "n=14"]

    def test_document_is_json_serialisable(self, small_result):
        text = json.dumps(result_to_json(small_result))
        assert "archive-demo" in text

    def test_file_round_trip(self, small_result, tmp_path):
        path = tmp_path / "r.json"
        save_result(small_result, path)
        rebuilt = load_result(path)
        assert rebuilt.aggregated() == small_result.aggregated()

    def test_report_formatting_works_on_rebuilt(self, small_result):
        rebuilt = result_from_json(result_to_json(small_result))
        assert "Archive demo" in format_result_table(rebuilt)

    def test_shape_checks_work_on_rebuilt(self, small_result):
        rebuilt = result_from_json(result_to_json(small_result))
        # unknown experiment id -> no claims, but the call must not crash
        assert check_figure_shapes(rebuilt) == []


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(DataError):
            result_from_json({"format": "nope"})

    def test_missing_fields_rejected(self):
        with pytest.raises(DataError):
            result_from_json({"format": "repro.experiment_result"})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(DataError):
            load_result(path)

    def test_stub_factories_refuse_to_generate(self, small_result):
        rebuilt = result_from_json(result_to_json(small_result))
        with pytest.raises(DataError, match="archive"):
            rebuilt.spec.points[0].graph_factory(0)
