"""Golden regression: a frozen status matrix must reproduce its frozen graph.

The fixture under ``tests/data/`` (see its README) pins the exact output
of ``Tends().fit`` on one committed input.  Any refactor of the IMI,
thresholding, candidate pruning, or search stages that silently changes
the inferred topology — including tie-breaking drift across numpy
versions — fails here first.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.tends import Tends
from repro.graphs import io as graph_io
from repro.simulation import io as sim_io

DATA_DIR = Path(__file__).resolve().parent.parent / "data"


@pytest.fixture(scope="module")
def golden_result():
    statuses = sim_io.read_statuses_csv(DATA_DIR / "golden_statuses.csv")
    return statuses, Tends().fit(statuses)


def test_fixture_files_exist():
    for name in ("golden_statuses.csv", "golden_edges.txt", "golden_threshold.txt"):
        assert (DATA_DIR / name).is_file(), f"missing fixture {name}"


def test_reproduces_frozen_edge_list(golden_result):
    _, result = golden_result
    frozen = graph_io.read_edge_list(DATA_DIR / "golden_edges.txt")
    assert result.graph.n_nodes == frozen.n_nodes
    assert result.graph.edge_set() == frozen.edge_set()


def test_reproduces_frozen_threshold(golden_result):
    _, result = golden_result
    frozen = float((DATA_DIR / "golden_threshold.txt").read_text().strip())
    # repr round-trip is exact; approx only cushions cross-platform libm
    # differences in the last ulp of the MI logs.
    assert result.threshold == pytest.approx(frozen, rel=1e-12, abs=0.0)


def test_parent_sets_match_frozen_edges(golden_result):
    _, result = golden_result
    frozen = graph_io.read_edge_list(DATA_DIR / "golden_edges.txt")
    rebuilt = {
        (parent, child)
        for child, parents in enumerate(result.parent_sets)
        for parent in parents
    }
    assert rebuilt == frozen.edge_set()


@pytest.mark.parametrize("executor,n_jobs", [("thread", 4), ("process", 2)])
def test_parallel_backends_reproduce_golden(golden_result, executor, n_jobs):
    statuses, reference = golden_result
    result = Tends(executor=executor, n_jobs=n_jobs).fit(statuses)
    assert result.graph.edge_set() == reference.graph.edge_set()
    assert result.parent_sets == reference.parent_sets
    assert result.threshold == reference.threshold


@pytest.mark.parametrize(
    "executor,n_jobs", [("serial", 1), ("thread", 4), ("process", 2)]
)
def test_traced_fit_reproduces_golden(golden_result, executor, n_jobs):
    # Tracing must be a pure observer: spans and counters ride along,
    # the inferred topology stays bit-identical to the frozen fixture.
    statuses, reference = golden_result
    result = Tends(executor=executor, n_jobs=n_jobs, trace=True).fit(statuses)
    assert result.graph.edge_set() == reference.graph.edge_set()
    assert result.parent_sets == reference.parent_sets
    assert result.threshold == reference.threshold
    assert result.telemetry is not None
    assert "tends.fit" in result.telemetry.span_names()


# ----------------------------------------------------------------------
# incremental golden fixture: a frozen batch schedule must reproduce the
# frozen final topology AND the frozen cached-count checksums after every
# partial_fit (guards the sufficient-statistics arithmetic, not just the
# final answer).
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden_incremental():
    statuses = sim_io.read_statuses_csv(
        DATA_DIR / "golden_incremental_statuses.csv"
    )
    spec = json.loads((DATA_DIR / "golden_incremental.json").read_text())
    return statuses, spec


def _replay_updates(statuses, spec, **overrides):
    bounds = [0, spec["initial_beta"]]
    for width in spec["batch_betas"]:
        bounds.append(bounds[-1] + width)
    assert bounds[-1] == statuses.beta
    estimator = Tends(**overrides)
    result = estimator.fit(statuses.subset(range(0, bounds[1])))
    checksums = [estimator.model.stats.checksum()]
    for start, stop in zip(bounds[1:], bounds[2:]):
        result = estimator.partial_fit(statuses.subset(range(start, stop)))
        checksums.append(estimator.model.stats.checksum())
    return result, checksums


def test_incremental_fixture_files_exist():
    for name in ("golden_incremental_statuses.csv", "golden_incremental.json"):
        assert (DATA_DIR / name).is_file(), f"missing fixture {name}"


def test_incremental_updates_reproduce_frozen_state(golden_incremental):
    statuses, spec = golden_incremental
    result, checksums = _replay_updates(statuses, spec)
    assert checksums == spec["stats_checksums"]
    frozen_edges = {(p, c) for p, c in spec["edges"]}
    assert result.graph.edge_set() == frozen_edges
    assert result.threshold == pytest.approx(
        spec["threshold"], rel=1e-12, abs=0.0
    )


def test_incremental_replay_matches_one_shot_fit(golden_incremental):
    statuses, spec = golden_incremental
    result, _ = _replay_updates(statuses, spec)
    full = Tends().fit(statuses)
    assert result.parent_sets == full.parent_sets
    assert result.threshold == full.threshold
    assert result.graph.edge_set() == full.graph.edge_set()


@pytest.mark.parametrize("executor,n_jobs", [("thread", 4), ("process", 2)])
def test_incremental_parallel_backends_reproduce_golden(
    golden_incremental, executor, n_jobs
):
    statuses, spec = golden_incremental
    result, checksums = _replay_updates(
        statuses, spec, executor=executor, n_jobs=n_jobs
    )
    assert checksums == spec["stats_checksums"]
    assert result.graph.edge_set() == {(p, c) for p, c in spec["edges"]}
