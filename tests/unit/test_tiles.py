"""Unit tests for the tiled sufficient-statistics layer (repro.core.tiles).

Grid geometry, crash-atomic tile files + CRC validation, the LRU tile
store with mirrored lower-triangle reads, dense-path parity of the
tiled counts / IMI / checksum, checkpoint resume, copy-on-write update
generations, and the TendsConfig / Tends wiring.
"""

from __future__ import annotations

import json
import zlib

import numpy as np
import pytest

from repro.core.config import TendsConfig
from repro.core.stats import COUNT_KEYS, SufficientStats
from repro.core.tends import Tends, TendsModel, merge_results
from repro.core.tiles import (
    DEFAULT_MAX_RESIDENT_TILES,
    STACK_KEYS,
    TileGrid,
    TileStore,
    TiledSufficientStats,
    read_tile,
    tiled_batch_counts,
    validate_tile,
    write_tile,
)
from repro.exceptions import ConfigurationError, DataError, InferenceError
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.statuses import StatusMatrix


def _observations(n=19, beta=70, seed=7, masked=False) -> StatusMatrix:
    truth = erdos_renyi_digraph(n, 0.12, seed=seed)
    statuses = DiffusionSimulator(truth, seed=seed).run(beta=beta).statuses
    if not masked:
        return statuses
    rng = np.random.default_rng(seed)
    mask = rng.random(statuses.values.shape) > 0.2
    return StatusMatrix(statuses.values, mask)


class TestStackKeys:
    def test_matches_canonical_count_key_order(self):
        # tiles duplicates the tuple to stay import-cycle-free; the
        # serialisation order must never drift.
        assert STACK_KEYS == COUNT_KEYS


class TestTileGrid:
    def test_block_count_and_ragged_edge(self):
        grid = TileGrid(n_nodes=10, tile_size=4)
        assert grid.n_blocks == 3
        assert grid.span(0) == (0, 4)
        assert grid.span(2) == (8, 10)
        assert grid.block_shape(2, 2) == (2, 2)
        assert grid.block_shape(0, 2) == (4, 2)

    def test_blocks_cover_exactly_the_upper_triangle(self):
        grid = TileGrid(n_nodes=10, tile_size=4)
        blocks = grid.blocks()
        assert blocks == [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]

    def test_tile_size_larger_than_n_is_one_block(self):
        grid = TileGrid(n_nodes=3, tile_size=100)
        assert grid.n_blocks == 1
        assert grid.span(0) == (0, 3)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(DataError):
            TileGrid(n_nodes=0, tile_size=4)
        with pytest.raises(DataError):
            TileGrid(n_nodes=4, tile_size=0)
        with pytest.raises(DataError):
            TileGrid(n_nodes=4, tile_size=2).span(2)


class TestTileFiles:
    def test_round_trip_and_crc(self, tmp_path):
        stack = np.arange(5 * 3 * 2, dtype=np.int64).reshape(5, 3, 2)
        crc = write_tile(tmp_path, (0, 1), stack)
        assert isinstance(crc, int)
        assert validate_tile(tmp_path, (0, 1), (5, 3, 2))
        back = read_tile(tmp_path, (0, 1), (5, 3, 2))
        assert np.array_equal(back, stack)

    def test_corruption_detected(self, tmp_path):
        stack = np.ones((5, 2, 2), dtype=np.int64)
        write_tile(tmp_path, (0, 0), stack)
        tile = tmp_path / "tile-00000-00000.npy"
        payload = bytearray(tile.read_bytes())
        payload[-1] ^= 0xFF  # flip one data byte
        tile.write_bytes(bytes(payload))
        assert not validate_tile(tmp_path, (0, 0), (5, 2, 2))

    def test_truncation_detected(self, tmp_path):
        stack = np.ones((5, 2, 2), dtype=np.int64)
        write_tile(tmp_path, (0, 0), stack)
        tile = tmp_path / "tile-00000-00000.npy"
        tile.write_bytes(tile.read_bytes()[:-8])
        assert not validate_tile(tmp_path, (0, 0), (5, 2, 2))

    def test_missing_sidecar_is_incomplete(self, tmp_path):
        stack = np.ones((5, 2, 2), dtype=np.int64)
        write_tile(tmp_path, (0, 0), stack)
        (tmp_path / "tile-00000-00000.npy.crc").unlink()
        assert not validate_tile(tmp_path, (0, 0), (5, 2, 2))

    def test_shape_mismatch_detected(self, tmp_path):
        # A stale tile from a different grid has a valid CRC but the
        # wrong recorded shape — still rejected.
        stack = np.ones((5, 3, 3), dtype=np.int64)
        write_tile(tmp_path, (0, 0), stack)
        assert not validate_tile(tmp_path, (0, 0), (5, 2, 2))
        with pytest.raises(DataError):
            read_tile(tmp_path, (0, 0), (5, 2, 2))

    def test_garbage_sidecar_is_invalid(self, tmp_path):
        stack = np.ones((5, 2, 2), dtype=np.int64)
        write_tile(tmp_path, (0, 0), stack)
        (tmp_path / "tile-00000-00000.npy.crc").write_text("not json")
        assert not validate_tile(tmp_path, (0, 0), (5, 2, 2))

    def test_sidecar_crc_matches_on_disk_bytes(self, tmp_path):
        stack = np.zeros((5, 2, 2), dtype=np.int64)
        write_tile(tmp_path, (1, 2), stack)
        sidecar = json.loads((tmp_path / "tile-00001-00002.npy.crc").read_text())
        payload = (tmp_path / "tile-00001-00002.npy").read_bytes()
        assert sidecar["crc32"] == (zlib.crc32(payload) & 0xFFFFFFFF)


class TestTiledBatchCounts:
    @pytest.mark.parametrize("kernel", ["numpy", "packed"])
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("tile_size", [1, 4, 7, 100])
    def test_bit_identical_to_dense(self, kernel, masked, tile_size):
        statuses = _observations(masked=masked)
        dense = SufficientStats.from_statuses(statuses, kernel=kernel)
        tiled = tiled_batch_counts(
            statuses, tile_size=tile_size, kernel=kernel
        )
        for key in COUNT_KEYS:
            assert np.array_equal(tiled[key], dense.counts[key]), key


class TestTileStore:
    @pytest.fixture
    def spilled(self, tmp_path):
        statuses = _observations()
        stats = TiledSufficientStats.from_statuses(
            statuses, tile_size=5, spill_dir=tmp_path
        )
        return statuses, stats

    def test_lower_triangle_reads_are_mirrored_views(self, spilled):
        statuses, stats = spilled
        dense = SufficientStats.from_statuses(statuses)
        grid = stats.grid
        bi, bj = 2, 0  # below the diagonal: served via transpose
        a0, a1 = grid.span(bi)
        b0, b1 = grid.span(bj)
        counts = stats.store.counts(bi, bj)
        for key in COUNT_KEYS:
            assert np.array_equal(
                counts[key], dense.counts[key][a0:a1, b0:b1]
            ), key

    def test_direct_lower_triangle_load_refused(self, spilled):
        _, stats = spilled
        with pytest.raises(DataError):
            stats.store.load((2, 0))

    def test_lru_eviction_caps_residency(self, tmp_path):
        statuses = _observations()
        stats = TiledSufficientStats.from_statuses(
            statuses, tile_size=4, spill_dir=tmp_path, max_resident_tiles=2
        )
        for block in stats.grid.blocks():
            stats.store.load(block)
            assert stats.store.resident_tiles <= 2
        stats.store.drop_cache()
        assert stats.store.resident_tiles == 0

    def test_default_residency_cap(self, spilled):
        _, stats = spilled
        assert stats.store.max_resident == DEFAULT_MAX_RESIDENT_TILES

    def test_spilled_bytes_positive(self, spilled):
        _, stats = spilled
        assert stats.store.spilled_bytes() > 0


class TestTiledSufficientStats:
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("kind", ["infection", "traditional"])
    def test_mi_matrix_bit_identical(self, tmp_path, masked, kind):
        statuses = _observations(masked=masked)
        dense = SufficientStats.from_statuses(statuses)
        tiled = TiledSufficientStats.from_statuses(
            statuses, tile_size=6, spill_dir=tmp_path
        )
        assert np.array_equal(
            np.asarray(tiled.mi_matrix(kind)), dense.mi_matrix(kind)
        )

    def test_checksum_equals_dense_checksum(self, tmp_path):
        statuses = _observations()
        dense = SufficientStats.from_statuses(statuses)
        tiled = TiledSufficientStats.from_statuses(
            statuses, tile_size=6, spill_dir=tmp_path
        )
        assert tiled.checksum() == dense.checksum()
        assert tiled.equals(dense)

    def test_count_matrix_and_to_dense(self, tmp_path):
        statuses = _observations(masked=True)
        dense = SufficientStats.from_statuses(statuses)
        tiled = TiledSufficientStats.from_statuses(
            statuses, tile_size=6, spill_dir=tmp_path
        )
        for key in COUNT_KEYS:
            assert np.array_equal(tiled.count_matrix(key), dense.counts[key])
        assert tiled.to_dense().equals(dense)
        with pytest.raises(DataError):
            tiled.count_matrix("nope")

    def test_resume_reuses_valid_tiles(self, tmp_path):
        statuses = _observations()
        first = TiledSufficientStats.from_statuses(
            statuses, tile_size=5, spill_dir=tmp_path
        )
        mtimes = {
            path.name: path.stat().st_mtime_ns
            for path in (tmp_path / "gen-00000000").glob("tile-*.npy")
        }
        second = TiledSufficientStats.from_statuses(
            statuses, tile_size=5, spill_dir=tmp_path
        )
        assert second.checksum() == first.checksum()
        after = {
            path.name: path.stat().st_mtime_ns
            for path in (tmp_path / "gen-00000000").glob("tile-*.npy")
        }
        assert after == mtimes, "resume rewrote already-valid tiles"

    def test_different_data_wipes_stale_spill(self, tmp_path):
        first = _observations(seed=1)
        other = _observations(seed=2)
        TiledSufficientStats.from_statuses(first, tile_size=5, spill_dir=tmp_path)
        stats = TiledSufficientStats.from_statuses(
            other, tile_size=5, spill_dir=tmp_path
        )
        assert stats.checksum() == SufficientStats.from_statuses(other).checksum()

    def test_updated_rolls_generation_and_matches_dense(self, tmp_path):
        statuses = _observations(beta=80)
        head = statuses.subset(range(50))
        tail = statuses.subset(range(50, 80))
        tiled = TiledSufficientStats.from_statuses(
            head, tile_size=5, spill_dir=tmp_path
        ).updated(tail)
        assert tiled.generation == 1
        dense = SufficientStats.from_statuses(head).updated(tail)
        assert tiled.checksum() == dense.checksum()
        generations = sorted(p.name for p in tmp_path.glob("gen-*"))
        assert generations == ["gen-00000000", "gen-00000001"]

    def test_update_prunes_grandparent_generations(self, tmp_path):
        statuses = _observations(beta=90)
        stats = TiledSufficientStats.from_statuses(
            statuses.subset(range(30)), tile_size=5, spill_dir=tmp_path
        )
        stats = stats.updated(statuses.subset(range(30, 60)))
        stats = stats.updated(statuses.subset(range(60, 90)))
        generations = sorted(p.name for p in tmp_path.glob("gen-*"))
        assert generations == ["gen-00000001", "gen-00000002"]
        assert stats.checksum() == SufficientStats.from_statuses(statuses).checksum()

    def test_empty_batch_returns_self(self, tmp_path):
        statuses = _observations()
        stats = TiledSufficientStats.from_statuses(
            statuses, tile_size=5, spill_dir=tmp_path
        )
        assert stats.updated(statuses.subset(range(0))) is stats

    def test_node_count_mismatch_rejected(self, tmp_path):
        stats = TiledSufficientStats.from_statuses(
            _observations(n=19), tile_size=5, spill_dir=tmp_path
        )
        with pytest.raises(DataError):
            stats.updated(_observations(n=7))

    def test_temporary_spill_when_unconfigured(self):
        statuses = _observations()
        stats = TiledSufficientStats.from_statuses(statuses, tile_size=5)
        assert stats.checksum() == SufficientStats.from_statuses(statuses).checksum()

    def test_unknown_mi_kind_rejected(self, tmp_path):
        stats = TiledSufficientStats.from_statuses(
            _observations(), tile_size=5, spill_dir=tmp_path
        )
        with pytest.raises(DataError):
            stats.mi_matrix("nope")


class TestConfigWiring:
    def test_tiling_fields_validate(self):
        with pytest.raises(ConfigurationError):
            TendsConfig(tile_size=0)
        with pytest.raises(ConfigurationError):
            TendsConfig(max_resident_tiles=0)
        config = TendsConfig(tile_size=64, spill_dir="/tmp/x", max_resident_tiles=4)
        assert config.tile_size == 64

    def test_tiling_fields_are_not_algorithm_fields(self):
        # Execution knobs only: a resumed service may turn tiling on/off
        # without invalidating its model.
        for name in ("tile_size", "spill_dir", "max_resident_tiles"):
            assert name not in TendsConfig.ALGORITHM_FIELDS
        a = TendsConfig().algorithm_fingerprint()
        b = TendsConfig(tile_size=8, spill_dir="/tmp/y").algorithm_fingerprint()
        assert a == b

    def test_from_model_accepts_tiling_overrides(self, tmp_path):
        statuses = _observations()
        estimator = Tends()
        estimator.fit(statuses)
        resumed = Tends.from_model(
            estimator.model, tile_size=5, spill_dir=str(tmp_path)
        )
        assert resumed.config.tile_size == 5


class TestTendsTiledFit:
    def test_fit_bit_identical_and_spills(self, tmp_path):
        statuses = _observations()
        dense = Tends().fit(statuses)
        tiled = Tends(tile_size=5, spill_dir=str(tmp_path)).fit(statuses)
        assert np.array_equal(
            np.asarray(dense.mi_matrix), np.asarray(tiled.mi_matrix)
        )
        assert repr(dense.threshold) == repr(tiled.threshold)
        assert dense.parent_sets == tiled.parent_sets
        assert dense.fingerprint() == tiled.fingerprint()
        assert list((tmp_path / "gen-00000000").glob("tile-*.npy"))

    def test_tiled_model_fingerprint_matches_dense(self, tmp_path):
        statuses = _observations()
        dense = Tends()
        dense.fit(statuses)
        tiled = Tends(tile_size=5, spill_dir=str(tmp_path))
        tiled.fit(statuses)
        assert tiled.model.fingerprint() == dense.model.fingerprint()

    def test_tiled_model_snapshot_round_trips(self, tmp_path):
        statuses = _observations()
        estimator = Tends(tile_size=5, spill_dir=str(tmp_path / "spill"))
        estimator.fit(statuses)
        path = estimator.model.save(tmp_path / "model.npz")
        loaded = TendsModel.load(path)
        assert loaded.fingerprint() == estimator.model.fingerprint()

    def test_tiled_partial_fit_matches_dense(self, tmp_path):
        statuses = _observations(beta=90)
        head = statuses.subset(range(60))
        tail = statuses.subset(range(60, 90))
        dense = Tends()
        dense.fit(head)
        dense_result = dense.partial_fit(tail)
        tiled = Tends(tile_size=5, spill_dir=str(tmp_path))
        tiled.fit(head)
        tiled_result = tiled.partial_fit(tail)
        assert dense_result.parent_sets == tiled_result.parent_sets
        assert np.array_equal(
            np.asarray(dense_result.mi_matrix),
            np.asarray(tiled_result.mi_matrix),
        )
        assert dense.model.fingerprint() == tiled.model.fingerprint()


class TestShardFitAndMerge:
    def test_merge_matches_full_fit(self):
        statuses = _observations()
        full = Tends().fit(statuses)
        n = statuses.n_nodes
        shards = [
            Tends().fit(statuses, nodes=range(start, min(start + 7, n)))
            for start in range(0, n, 7)
        ]
        merged = merge_results(shards)
        assert merged.parent_sets == full.parent_sets
        assert merged.fingerprint() == full.fingerprint()
        assert merged.nodes is None

    def test_shard_fit_installs_no_model(self):
        statuses = _observations()
        estimator = Tends()
        estimator.fit(statuses, nodes=[0, 1, 2])
        assert estimator.model is None

    def test_shard_result_is_partial(self):
        statuses = _observations()
        result = Tends().fit(statuses, nodes=[3, 4])
        assert result.nodes == (3, 4)
        full = Tends().fit(statuses)
        assert result.parent_sets[3] == full.parent_sets[3]
        assert result.parent_sets[4] == full.parent_sets[4]
        untouched = [
            result.parent_sets[i] for i in range(statuses.n_nodes) if i not in (3, 4)
        ]
        assert all(parents == () for parents in untouched)

    def test_invalid_shards_rejected(self):
        statuses = _observations()
        with pytest.raises(ConfigurationError):
            Tends().fit(statuses, nodes=[])
        with pytest.raises(ConfigurationError):
            Tends().fit(statuses, nodes=[statuses.n_nodes])
        with pytest.raises(ConfigurationError):
            Tends().fit(statuses, nodes=[-1])

    def test_merge_rejects_gaps_overlaps_and_full_results(self):
        statuses = _observations()
        n = statuses.n_nodes
        left = Tends().fit(statuses, nodes=range(0, 10))
        right = Tends().fit(statuses, nodes=range(10, n))
        with pytest.raises(InferenceError):
            merge_results([])
        with pytest.raises(InferenceError):
            merge_results([left])  # gap: nodes 10..n missing
        with pytest.raises(InferenceError):
            merge_results([left, left, right])  # overlap
        full = Tends().fit(statuses)
        with pytest.raises(InferenceError):
            merge_results([full, right])

    def test_merge_rejects_mismatched_observations(self):
        a = _observations(seed=1)
        b = _observations(seed=2)
        left = Tends().fit(a, nodes=range(0, 10))
        right = Tends().fit(b, nodes=range(10, b.n_nodes))
        with pytest.raises(InferenceError):
            merge_results([left, right])

    def test_tiled_shard_fit_merges_too(self, tmp_path):
        statuses = _observations()
        n = statuses.n_nodes
        full = Tends().fit(statuses)
        left = Tends(tile_size=5, spill_dir=str(tmp_path / "a")).fit(
            statuses, nodes=range(0, 10)
        )
        right = Tends(tile_size=5, spill_dir=str(tmp_path / "b")).fit(
            statuses, nodes=range(10, n)
        )
        merged = merge_results([left, right])
        assert merged.fingerprint() == full.fingerprint()
