"""Seed-selection strategies."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.seeds import (
    degree_biased_seeds,
    fixed_seeds,
    seed_count,
    uniform_random_seeds,
)
from repro.utils.rng import as_generator


class TestSeedCount:
    def test_ceiling(self):
        assert seed_count(100, 0.15) == 15
        assert seed_count(101, 0.15) == 16

    def test_at_least_one(self):
        assert seed_count(3, 0.01) == 1

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            seed_count(100, 0.0)


class TestUniformRandomSeeds:
    def test_count_and_distinctness(self, small_er_graph):
        strategy = uniform_random_seeds(0.2)
        seeds = strategy(small_er_graph, as_generator(0))
        assert len(seeds) == 5
        assert len(set(seeds.tolist())) == 5

    def test_all_in_range(self, small_er_graph):
        seeds = uniform_random_seeds(0.5)(small_er_graph, as_generator(1))
        assert all(0 <= s < small_er_graph.n_nodes for s in seeds)

    def test_varies_with_rng(self, small_er_graph):
        strategy = uniform_random_seeds(0.2)
        a = strategy(small_er_graph, as_generator(1))
        b = strategy(small_er_graph, as_generator(2))
        assert set(a.tolist()) != set(b.tolist())


class TestDegreeBiasedSeeds:
    def test_bias_towards_hubs(self, star_graph):
        strategy = degree_biased_seeds(0.17)  # 1 seed from 6 nodes
        hits = sum(
            1
            for trial in range(300)
            if 0 in strategy(star_graph, as_generator(trial)).tolist()
        )
        # Hub 0 has degree 5 of 10 total; weights (degree+1)/(n+degrees).
        assert hits > 100  # far above the uniform expectation of 50

    def test_in_degree_variant(self, star_graph):
        strategy = degree_biased_seeds(0.17, use_out_degree=False)
        seeds = strategy(star_graph, as_generator(0))
        assert len(seeds) == seed_count(star_graph.n_nodes, 0.17)


class TestFixedSeeds:
    def test_returns_same_set(self, small_er_graph):
        strategy = fixed_seeds([3, 1, 3])
        seeds = strategy(small_er_graph, as_generator(0))
        assert seeds.tolist() == [1, 3]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fixed_seeds([])

    def test_out_of_range_detected_at_call(self, small_er_graph):
        strategy = fixed_seeds([999])
        with pytest.raises(ConfigurationError):
            strategy(small_er_graph, as_generator(0))
