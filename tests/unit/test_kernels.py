"""Unit tests for the bit-packing layer itself (repro.core.kernels).

The differential battery (``tests/property/test_prop_kernels.py``) proves
the packed backend bit-identical to the numpy estimators; these tests pin
the packing mechanics that proof rests on — word layout, tail-bit
masking, the popcount fallback, the 62-column cap, and the NPZ
round-trip of packed arrays.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.core.kernels as kernels
from repro.core.config import TendsConfig
from repro.core.executor import execution_env
from repro.core.kernels import (
    ENV_KERNEL,
    MAX_PACK_COLUMNS,
    WORD_BITS,
    PackedStatuses,
    pack_bits,
    packed_family_counts,
    packed_joint_counts,
    packed_pairwise_complete_counts,
    popcount_words,
    resolve_kernel,
    unpack_bits,
)
from repro.core.scoring import family_counts
from repro.core.search import MAX_PARENT_SET_SIZE, ParentSearch
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.statuses import StatusMatrix


def _random_statuses(rng, beta, n, mask_density=None):
    data = (rng.random((beta, n)) < 0.5).astype(np.uint8)
    mask = None
    if mask_density is not None:
        mask = rng.random((beta, n)) < mask_density
    return StatusMatrix(data, mask)


# ----------------------------------------------------------------------
# popcount primitive
# ----------------------------------------------------------------------

def test_popcount_known_values():
    words = np.array(
        [0, 1, 2, 3, 0xFF, 1 << 63, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64
    )
    assert popcount_words(words).tolist() == [0, 1, 1, 2, 8, 1, 64]


def test_popcount_preserves_shape_and_dtype():
    words = np.arange(12, dtype=np.uint64).reshape(3, 4)
    counts = popcount_words(words)
    assert counts.shape == (3, 4)
    assert counts.dtype == np.int64


def test_popcount_fallback_parity(monkeypatch):
    # The 16-bit LUT path (numpy < 2.0, no np.bitwise_count) must count
    # exactly like the native instruction on arbitrary words.
    rng = np.random.default_rng(7)
    words = rng.integers(0, 2**64, size=(5, 9), dtype=np.uint64)
    native = popcount_words(words)
    monkeypatch.setattr(kernels, "_HAS_NATIVE_POPCOUNT", False)
    assert np.array_equal(popcount_words(words), native)


def test_fallback_counts_through_whole_kernel_stack(monkeypatch):
    rng = np.random.default_rng(8)
    statuses = _random_statuses(rng, 130, 7, mask_density=0.8)
    reference = statuses.pairwise_complete_counts()
    monkeypatch.setattr(kernels, "_HAS_NATIVE_POPCOUNT", False)
    got = packed_pairwise_complete_counts(PackedStatuses.from_statuses(statuses))
    for key in ("11", "10", "01", "00", "obs"):
        assert np.array_equal(reference[key], got[key]), key


def test_has_native_popcount_reports_module_flag(monkeypatch):
    monkeypatch.setattr(kernels, "_HAS_NATIVE_POPCOUNT", False)
    assert kernels.has_native_popcount() is False
    monkeypatch.setattr(kernels, "_HAS_NATIVE_POPCOUNT", True)
    assert kernels.has_native_popcount() is True


# ----------------------------------------------------------------------
# pack / unpack
# ----------------------------------------------------------------------

@pytest.mark.parametrize("beta", [0, 1, 7, 63, 64, 65, 128, 130])
def test_pack_unpack_round_trip(beta):
    rng = np.random.default_rng(beta)
    matrix = (rng.random((beta, 5)) < 0.5).astype(np.uint8)
    words = pack_bits(matrix)
    assert words.dtype == np.uint64
    assert words.shape == (5, (beta + WORD_BITS - 1) // WORD_BITS)
    assert np.array_equal(unpack_bits(words, beta), matrix)


@pytest.mark.parametrize("beta", [1, 7, 63, 65, 130])
def test_pack_tail_bits_are_zero(beta):
    # Every bit at positions >= beta must be 0, or family counting would
    # see phantom processes.
    matrix = np.ones((beta, 3), dtype=np.uint8)
    words = pack_bits(matrix)
    assert popcount_words(words).sum() == 3 * beta


def test_pack_bit_layout_is_little_endian_per_word():
    # Bit ℓ of word w of node j = process 64·w + ℓ.
    matrix = np.zeros((70, 2), dtype=np.uint8)
    matrix[3, 0] = 1
    matrix[64, 0] = 1
    matrix[69, 1] = 1
    words = pack_bits(matrix)
    assert words[0, 0] == np.uint64(1 << 3)
    assert words[0, 1] == np.uint64(1)
    assert words[1, 1] == np.uint64(1 << 5)


def test_pack_rejects_non_2d():
    with pytest.raises(DataError):
        pack_bits(np.zeros(4, dtype=np.uint8))
    with pytest.raises(DataError):
        unpack_bits(np.zeros(4, dtype=np.uint64), 4)


def test_unpack_rejects_inconsistent_bit_count():
    words = pack_bits(np.ones((10, 2), dtype=np.uint8))
    with pytest.raises(DataError):
        unpack_bits(words, 65)  # 65 bits need two words, got one


# ----------------------------------------------------------------------
# PackedStatuses
# ----------------------------------------------------------------------

def test_packed_statuses_round_trip_with_mask():
    rng = np.random.default_rng(11)
    statuses = _random_statuses(rng, 77, 6, mask_density=0.7)
    packed = PackedStatuses.from_statuses(statuses)
    assert packed.n_nodes == 6
    assert packed.n_bits == 77
    assert packed.has_missing
    back = packed.unpack()
    assert np.array_equal(back.values, statuses.values)
    assert np.array_equal(back.mask, statuses.mask)


def test_packed_statuses_accepts_raw_arrays():
    packed = PackedStatuses.from_statuses(np.eye(4, dtype=np.uint8))
    assert packed.n_bits == 4
    assert packed.mask is None


def test_packed_statuses_words_are_read_only():
    packed = PackedStatuses.from_statuses(np.ones((5, 3), dtype=np.uint8))
    with pytest.raises(ValueError):
        packed.ones[0, 0] = np.uint64(0)


def test_npz_round_trip(tmp_path):
    rng = np.random.default_rng(12)
    statuses = _random_statuses(rng, 90, 5, mask_density=0.6)
    packed = PackedStatuses.from_statuses(statuses)
    path = tmp_path / "packed.npz"
    np.savez(path, **packed.to_arrays())
    with np.load(path) as archive:
        restored = PackedStatuses.from_arrays(archive)
    assert restored.n_bits == packed.n_bits
    assert np.array_equal(restored.ones, packed.ones)
    assert np.array_equal(restored.mask, packed.mask)
    back = restored.unpack()
    assert np.array_equal(back.values, statuses.values)
    assert np.array_equal(back.mask, statuses.mask)


def test_from_arrays_missing_entry_raises():
    packed = PackedStatuses.from_statuses(np.ones((5, 3), dtype=np.uint8))
    arrays = packed.to_arrays()
    del arrays["kernel_n_bits"]
    with pytest.raises(DataError):
        PackedStatuses.from_arrays(arrays)


def test_from_arrays_inconsistent_width_raises():
    packed = PackedStatuses.from_statuses(np.ones((5, 3), dtype=np.uint8))
    arrays = dict(packed.to_arrays())
    arrays["kernel_n_bits"] = np.array([200], dtype=np.int64)
    with pytest.raises(DataError):
        PackedStatuses.from_arrays(arrays)


def test_mismatched_mask_shape_raises():
    ones = pack_bits(np.ones((5, 3), dtype=np.uint8))
    mask = pack_bits(np.ones((5, 2), dtype=np.uint8))
    with pytest.raises(DataError):
        PackedStatuses(ones=ones, mask=mask, n_bits=5)


# ----------------------------------------------------------------------
# pairwise kernels
# ----------------------------------------------------------------------

def test_block_boundaries_do_not_change_counts(monkeypatch):
    # Shrink the block budget so the all-pairs kernel runs many blocks;
    # the counts must not depend on the blocking.
    rng = np.random.default_rng(13)
    statuses = _random_statuses(rng, 150, 20, mask_density=0.8)
    packed = PackedStatuses.from_statuses(statuses)
    reference = packed_pairwise_complete_counts(packed)
    monkeypatch.setattr(kernels, "_BLOCK_WORD_BUDGET", 4)
    blocked = packed_pairwise_complete_counts(packed)
    for key in ("11", "10", "01", "00", "obs"):
        assert np.array_equal(reference[key], blocked[key]), key


def test_unmasked_pairwise_complete_equals_joint_plus_beta():
    rng = np.random.default_rng(14)
    statuses = _random_statuses(rng, 100, 8)
    packed = PackedStatuses.from_statuses(statuses)
    joint = packed_joint_counts(packed)
    complete = packed_pairwise_complete_counts(packed)
    for key in ("11", "10", "01", "00"):
        assert np.array_equal(joint[key], complete[key])
    assert (complete["obs"] == 100).all()


def test_zero_process_matrix_counts_to_zero():
    packed = PackedStatuses.from_statuses(np.zeros((0, 4), dtype=np.uint8))
    assert packed.n_words == 0
    joint = packed_joint_counts(packed)
    assert all(not joint[key].any() for key in joint)


# ----------------------------------------------------------------------
# family contingency counting at the 62-column cap
# ----------------------------------------------------------------------

def test_family_counts_at_62_parent_cap_boundary():
    # MAX_PARENT_SET_SIZE == MAX_PACK_COLUMNS == 62: the widest family
    # the search can legally score must count identically on both paths.
    assert MAX_PARENT_SET_SIZE == MAX_PACK_COLUMNS
    rng = np.random.default_rng(15)
    statuses = _random_statuses(rng, 70, 63)
    packed = PackedStatuses.from_statuses(statuses)
    parents = list(range(1, 63))
    assert len(parents) == MAX_PACK_COLUMNS
    reference = family_counts(statuses, 0, parents)
    totals, infected, beta = packed_family_counts(packed, 0, parents)
    assert np.array_equal(reference.totals, totals)
    assert np.array_equal(reference.infected, infected)
    assert reference.beta == beta


def test_family_counts_beyond_cap_raises_like_numpy_path():
    rng = np.random.default_rng(16)
    statuses = _random_statuses(rng, 10, 64)
    packed = PackedStatuses.from_statuses(statuses)
    parents = list(range(1, 64))
    with pytest.raises(DataError, match="too many columns for bit-packing: 63"):
        packed_family_counts(packed, 0, parents)
    with pytest.raises(DataError, match="too many columns for bit-packing: 63"):
        family_counts(statuses, 0, parents)


def test_pattern_tree_and_wide_paths_agree(monkeypatch):
    rng = np.random.default_rng(17)
    for mask_density in (None, 0.7):
        statuses = _random_statuses(rng, 120, 8, mask_density=mask_density)
        packed = PackedStatuses.from_statuses(statuses)
        parents = [1, 4, 2, 7]
        tree = packed_family_counts(packed, 0, parents)
        monkeypatch.setattr(kernels, "_PATTERN_TREE_MAX_PARENTS", 0)
        wide = packed_family_counts(packed, 0, parents)
        monkeypatch.undo()
        assert np.array_equal(tree[0], wide[0])
        assert np.array_equal(tree[1], wide[1])
        assert tree[2] == wide[2]


def test_family_counts_with_never_observed_family():
    # A family whose mask intersection is empty degrades to ([0], [0], 0),
    # exactly like the numpy path's zero-complete-rows guard.
    data = np.ones((6, 3), dtype=np.uint8)
    mask = np.ones((6, 3), dtype=np.bool_)
    mask[:, 2] = False
    statuses = StatusMatrix(data, mask)
    packed = PackedStatuses.from_statuses(statuses)
    reference = family_counts(statuses, 0, [2])
    totals, infected, beta = packed_family_counts(packed, 0, [2])
    assert np.array_equal(reference.totals, totals)
    assert np.array_equal(reference.infected, infected)
    assert reference.beta == beta == 0


def test_family_counts_empty_parent_set():
    rng = np.random.default_rng(18)
    statuses = _random_statuses(rng, 33, 4, mask_density=0.5)
    packed = PackedStatuses.from_statuses(statuses)
    reference = family_counts(statuses, 2, [])
    totals, infected, beta = packed_family_counts(packed, 2, [])
    assert np.array_equal(reference.totals, totals)
    assert np.array_equal(reference.infected, infected)
    assert reference.beta == beta


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------

def test_resolve_kernel_defaults_and_explicit(monkeypatch):
    monkeypatch.delenv(ENV_KERNEL, raising=False)
    assert resolve_kernel() == "numpy"
    assert resolve_kernel("packed") == "packed"
    assert resolve_kernel("numpy") == "numpy"


def test_resolve_kernel_env_fallback(monkeypatch):
    monkeypatch.setenv(ENV_KERNEL, "packed")
    assert resolve_kernel() == "packed"
    # Explicit value wins over the environment.
    assert resolve_kernel("numpy") == "numpy"


def test_resolve_kernel_rejects_unknown(monkeypatch):
    with pytest.raises(ConfigurationError):
        resolve_kernel("simd")
    monkeypatch.setenv(ENV_KERNEL, "simd")
    with pytest.raises(ConfigurationError):
        resolve_kernel()


def test_execution_env_pins_and_restores_kernel(monkeypatch):
    monkeypatch.delenv(ENV_KERNEL, raising=False)
    import os

    with execution_env(kernel="packed"):
        assert os.environ[ENV_KERNEL] == "packed"
        assert resolve_kernel() == "packed"
    assert ENV_KERNEL not in os.environ


def test_config_validates_kernel_field():
    assert TendsConfig(kernel="packed").kernel == "packed"
    assert TendsConfig().kernel is None
    with pytest.raises(ConfigurationError):
        TendsConfig(kernel="simd")


def test_kernel_excluded_from_algorithm_fingerprint():
    # Backends are bit-identical, so a model saved under one kernel must
    # resume under the other (kernel stays out of ALGORITHM_FIELDS).
    assert "kernel" not in TendsConfig.ALGORITHM_FIELDS
    assert (
        TendsConfig(kernel="packed").algorithm_fingerprint()
        == TendsConfig().algorithm_fingerprint()
    )


# ----------------------------------------------------------------------
# ParentSearch integration
# ----------------------------------------------------------------------

def test_parent_search_pickle_drops_packed_cache():
    rng = np.random.default_rng(19)
    statuses = _random_statuses(rng, 60, 6)
    search = ParentSearch(statuses, TendsConfig(kernel="packed"))
    parents, _ = search.find_parents(0, [1, 2, 3])
    assert search._packed is not None  # cache built on first score
    clone = pickle.loads(pickle.dumps(search))
    assert clone._packed is None  # workers re-pack lazily
    clone_parents, _ = clone.find_parents(0, [1, 2, 3])
    assert clone_parents == parents


def test_parent_search_backends_agree():
    rng = np.random.default_rng(20)
    statuses = _random_statuses(rng, 80, 8, mask_density=0.85)
    reference = ParentSearch(statuses, TendsConfig())
    packed = ParentSearch(statuses, TendsConfig(kernel="packed"))
    for node in range(8):
        candidates = [c for c in range(8) if c != node]
        ref_parents, ref_diag = reference.find_parents(node, candidates)
        got_parents, got_diag = packed.find_parents(node, candidates)
        assert ref_parents == got_parents
        assert ref_diag.final_score == got_diag.final_score
