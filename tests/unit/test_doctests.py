"""Run the doctests embedded in module and class docstrings.

Keeps every usage example in the documentation executable and correct.
"""

import doctest

import pytest

import repro
import repro.core.executor
import repro.core.imi
import repro.core.kmeans
import repro.core.scoring
import repro.core.tends
import repro.graphs.digraph
import repro.simulation.engine
import repro.simulation.statuses
import repro.utils.rng
import repro.utils.timing

MODULES = [
    repro,
    repro.core.executor,
    repro.core.imi,
    repro.core.kmeans,
    repro.core.scoring,
    repro.core.tends,
    repro.graphs.digraph,
    repro.simulation.engine,
    repro.simulation.statuses,
    repro.utils.rng,
    repro.utils.timing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
