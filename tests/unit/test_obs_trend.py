"""Perf trend ledger: append/load, CRC guard, rolling baseline, checks."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import DataError, JournalCorruptionWarning
from repro.obs.trend import (
    TREND_FORMAT,
    append_trend,
    build_entry,
    check_trend,
    load_trend,
    memory_profile,
    rolling_baseline,
    trend_series,
)

MB = 1 << 20


def _manifest(stages, memory=None):
    document = {
        "format": "repro.run_manifest",
        "version": 1,
        "kind": "tends.fit",
        "created_unix": 100.0,
        "config": {},
        "seeds": {},
        "environment": {},
        "git": {"revision": "abc1234"},
        "stages": dict(stages),
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "result": {},
        "total_seconds": float(sum(stages.values())),
    }
    if memory is not None:
        document["memory"] = memory
    return document


def _ledger(tmp_path, runs, name="trend.jsonl"):
    """Append one entry per (stages, memory) pair; returns the path."""
    path = tmp_path / name
    for stages, memory in runs:
        append_trend(path, _manifest(stages, memory))
    return path


STEADY = ({"imi": 0.5, "search": 1.0}, {"total": {"peak_rss_bytes": 50 * MB}})


class TestEntryBuilding:
    def test_memory_profile_flattens_stage_stats(self):
        manifest = _manifest(
            {"imi": 1.0},
            {
                "imi": {
                    "alloc_bytes": 10,
                    "peak_alloc_bytes": 20,
                    "peak_rss_bytes": 30,
                },
                "odd": {"alloc_bytes": None, "peak_rss_bytes": 40},
            },
        )
        profile = memory_profile(manifest)
        assert profile["mem:imi:alloc"] == 10.0
        assert profile["mem:imi:peak_alloc"] == 20.0
        assert profile["mem:imi:peak_rss"] == 30.0
        assert "mem:odd:alloc" not in profile  # None values skipped
        assert profile["mem:odd:peak_rss"] == 40.0

    def test_build_entry_carries_provenance_and_crc(self):
        entry = build_entry(
            _manifest({"imi": 1.0}), label="bench", extra={"scale": "quick"}
        )
        assert entry["format"] == TREND_FORMAT
        assert entry["label"] == "bench"
        assert entry["kind"] == "tends.fit"
        assert entry["revision"] == "abc1234"
        assert entry["recorded_unix"] == 100.0
        assert entry["timings"]["stage:imi"] == 1.0
        assert entry["meta"] == {"scale": "quick"}
        assert isinstance(entry["crc"], int)


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        path = _ledger(tmp_path, [STEADY, STEADY])
        entries = load_trend(path)
        assert len(entries) == 2
        assert entries[0]["timings"]["total"] == 1.5
        assert entries[0]["memory"]["mem:total:peak_rss"] == float(50 * MB)

    def test_missing_file_is_empty_ledger(self, tmp_path):
        assert load_trend(tmp_path / "absent.jsonl") == []

    def test_corrupt_line_skipped_with_warning(self, tmp_path):
        path = _ledger(tmp_path, [STEADY, STEADY, STEADY])
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"label":null', '"label":"tampered"')
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(JournalCorruptionWarning, match="CRC mismatch"):
            entries = load_trend(path)
        assert len(entries) == 2

    def test_invalid_json_and_foreign_lines_skipped(self, tmp_path):
        path = _ledger(tmp_path, [STEADY])
        with path.open("a") as handle:
            handle.write("{not json\n")
            handle.write(json.dumps({"format": "other.thing"}) + "\n")
        with pytest.warns(JournalCorruptionWarning):
            entries = load_trend(path)
        assert len(entries) == 1

    def test_verify_crc_false_keeps_tampered_lines(self, tmp_path):
        path = _ledger(tmp_path, [STEADY, STEADY])
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"label":null', '"label":"tampered"')
        path.write_text("\n".join(lines) + "\n")
        assert len(load_trend(path, verify_crc=False)) == 2


class TestRollingBaseline:
    def test_median_of_previous_window(self, tmp_path):
        runs = [
            ({"imi": 1.0}, None),
            ({"imi": 3.0}, None),
            ({"imi": 5.0}, None),
            ({"imi": 9.0}, None),  # newest: excluded from the baseline
        ]
        entries = load_trend(_ledger(tmp_path, runs))
        timings, memory = rolling_baseline(entries, window=3)
        assert timings["stage:imi"] == 3.0
        assert memory == {}

    def test_window_limits_history(self, tmp_path):
        runs = [({"imi": v}, None) for v in (100.0, 1.0, 2.0, 3.0, 9.0)]
        entries = load_trend(_ledger(tmp_path, runs))
        timings, _ = rolling_baseline(entries, window=3)
        assert timings["stage:imi"] == 2.0  # the 100.0 outlier aged out

    def test_too_short_ledger_raises(self, tmp_path):
        entries = load_trend(_ledger(tmp_path, [STEADY]))
        with pytest.raises(DataError, match="at least 2 entries"):
            rolling_baseline(entries)

    def test_invalid_window_rejected(self, tmp_path):
        entries = load_trend(_ledger(tmp_path, [STEADY, STEADY]))
        with pytest.raises(DataError, match="window"):
            rolling_baseline(entries, window=0)


class TestCheckTrend:
    def test_steady_ledger_passes(self, tmp_path):
        entries = load_trend(_ledger(tmp_path, [STEADY] * 4))
        report = check_trend(entries)
        assert report.ok

    def test_planted_timing_regression_flagged(self, tmp_path):
        runs = [STEADY] * 4 + [
            ({"imi": 1.0, "search": 2.0}, STEADY[1])  # 2x slower
        ]
        entries = load_trend(_ledger(tmp_path, runs))
        report = check_trend(entries)
        assert not report.ok
        flagged = {c.entry for c in report.regressions()}
        assert {"stage:imi", "stage:search", "total"} <= flagged

    def test_planted_memory_regression_flagged(self, tmp_path):
        grown = (STEADY[0], {"total": {"peak_rss_bytes": 120 * MB}})
        entries = load_trend(_ledger(tmp_path, [STEADY] * 4 + [grown]))
        report = check_trend(entries)
        assert not report.ok
        assert {c.entry for c in report.regressions()} == {
            "mem:total:peak_rss"
        }

    def test_memory_tolerance_is_independent(self, tmp_path):
        grown = (STEADY[0], {"total": {"peak_rss_bytes": 120 * MB}})
        entries = load_trend(_ledger(tmp_path, [STEADY] * 4 + [grown]))
        assert check_trend(entries, max_memory_growth=3.0).ok
        assert not check_trend(entries).ok

    def test_small_memory_noise_skipped(self, tmp_path):
        quiet = ({"imi": 0.5}, {"total": {"alloc_bytes": 1000}})
        noisy = ({"imi": 0.5}, {"total": {"alloc_bytes": 9000}})
        entries = load_trend(_ledger(tmp_path, [quiet] * 3 + [noisy]))
        report = check_trend(entries)
        assert report.ok
        assert any("noise floor" in s for s in report.skipped)

    def test_empty_and_short_ledgers_raise(self, tmp_path):
        with pytest.raises(DataError, match="empty"):
            check_trend([])
        entries = load_trend(_ledger(tmp_path, [STEADY]))
        with pytest.raises(DataError, match="at least 2 entries"):
            check_trend(entries)


class TestTrendSeries:
    def test_series_indexes_entries(self, tmp_path):
        runs = [({"imi": 1.0}, None), ({"imi": 2.0}, None)]
        entries = load_trend(_ledger(tmp_path, runs))
        series = trend_series(entries)
        assert series["stage:imi"] == [(0.0, 1.0), (1.0, 2.0)]
        assert series["total"] == [(0.0, 1.0), (1.0, 2.0)]

    def test_memory_section(self, tmp_path):
        entries = load_trend(_ledger(tmp_path, [STEADY, STEADY]))
        series = trend_series(entries, section="memory")
        assert series["mem:total:peak_rss"] == [
            (0.0, float(50 * MB)),
            (1.0, float(50 * MB)),
        ]

    def test_invalid_section_rejected(self):
        with pytest.raises(DataError, match="section"):
            trend_series([], section="nope")
