"""Unit tests for the drift detection-latency/recovery benchmark
(:mod:`repro.evaluation.drift`) and its chart.

A tiny end-to-end run (small LFR truth, short stream) pins the result
shape, the series/summary accessors, and the chart rendering; the
validation tests pin the ConfigurationError surface.  The full-scale
numbers (recovery_ratio, latency) are asserted in
``benchmarks/bench_drift_recovery.py``, not here.
"""

from __future__ import annotations

import math

import pytest

from repro.evaluation.drift import (
    DRIFT_MODES,
    DriftCell,
    DriftExperimentResult,
    drift_stream_spec,
    run_drift_experiment,
)
from repro.evaluation.plotting import drift_chart
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def small_result():
    """One cheap shared run: n=40, 3 pre + 3 post batches of 40."""
    return run_drift_experiment(
        n_nodes=40,
        beta_pre=120,
        beta_post=120,
        batch_beta=40,
        rewire_fraction=0.3,
        seed=11,
    )


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            run_drift_experiment(modes=("ignore", "panic"))

    def test_bad_batch_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            run_drift_experiment(batch_beta=0)

    def test_too_short_stream_rejected(self):
        stream = drift_stream_spec(
            n_nodes=20, beta_pre=30, beta_post=30, seed=3
        )
        with pytest.raises(ConfigurationError):
            run_drift_experiment(stream=stream, batch_beta=50)


class TestExperiment:
    def test_result_shape(self, small_result):
        result = small_result
        assert isinstance(result, DriftExperimentResult)
        assert result.change_point == 120
        assert set(result.final_f) == set(DRIFT_MODES)
        assert set(result.recovery_ratio) == set(DRIFT_MODES)
        # ignore has no detector, so no latency entry.
        assert set(result.detection_latency) == {"detect", "adapt"}
        # 6 batches per mode.
        assert len(result.cells) == 6 * len(DRIFT_MODES)
        assert all(isinstance(cell, DriftCell) for cell in result.cells)

    def test_cascades_seen_monotone_per_mode(self, small_result):
        for mode in DRIFT_MODES:
            seen = [
                c.cascades_seen for c in small_result.cells if c.mode == mode
            ]
            assert seen == sorted(seen)
            assert seen[-1] == 240

    def test_ignore_mode_never_adapts(self, small_result):
        for cell in small_result.cells:
            if cell.mode == "ignore":
                assert not cell.drifted and not cell.adapted
            if cell.mode == "detect":
                assert not cell.adapted

    def test_oracle_and_scores_are_probabilities(self, small_result):
        assert 0.0 < small_result.oracle_f <= 1.0
        for f in small_result.final_f.values():
            assert math.isnan(f) or 0.0 <= f <= 1.0

    def test_series_and_summary_accessors(self, small_result):
        series = small_result.series()
        assert set(series) == set(DRIFT_MODES)
        for points in series.values():
            assert all(math.isfinite(x) and math.isfinite(y) for x, y in points)
        rows = small_result.summary_rows()
        assert {row["mode"] for row in rows} == set(DRIFT_MODES)
        assert all(row["oracle_f"] == small_result.oracle_f for row in rows)

    def test_stream_reuse_is_deterministic(self):
        stream = drift_stream_spec(
            n_nodes=30, beta_pre=80, beta_post=80, rewire_fraction=0.3, seed=5
        )
        once = run_drift_experiment(stream=stream, batch_beta=40)
        twice = run_drift_experiment(stream=stream, batch_beta=40)
        assert once.final_f == twice.final_f
        assert once.cells == twice.cells


class TestSeriesNanHandling:
    def test_series_skips_nan_cells(self):
        cell_ok = DriftCell(
            mode="ignore", batch_index=0, cascades_seen=40,
            f_score=0.5, drifted=False, adapted=False, n_dirty=0,
        )
        cell_bad = DriftCell(
            mode="ignore", batch_index=1, cascades_seen=80,
            f_score=math.nan, drifted=False, adapted=False, n_dirty=0,
            error="InferenceError: boom",
        )
        result = DriftExperimentResult(
            n_nodes=10, beta_pre=40, beta_post=40, batch_beta=40,
            rewire_fraction=0.1, seed=1, change_point=40,
            cells=(cell_ok, cell_bad), oracle_f=0.8,
            final_f={"ignore": math.nan},
            detection_latency={},
            recovery_ratio={"ignore": math.nan},
        )
        assert result.series() == {"ignore": [(40.0, 0.5)]}


class TestChart:
    def test_drift_chart_renders_svg(self, small_result):
        svg = drift_chart(small_result)
        assert svg.lstrip().startswith("<svg") or "<svg" in svg
        for mode in DRIFT_MODES:
            assert mode in svg
        # The change-point marker names the rewire cascade index.
        assert "change point" in svg
        assert str(small_result.change_point) in svg
