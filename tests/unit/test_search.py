"""Greedy parent-set search strategies."""

import numpy as np
import pytest

from repro.core.config import TendsConfig
from repro.core.scoring import empty_set_score, local_score
from repro.core.search import ParentSearch
from repro.simulation.statuses import StatusMatrix


def _copy_noise_statuses(beta: int = 60, seed: int = 0) -> StatusMatrix:
    """Column 1 copies column 0 with small flip noise; columns 2-3 random."""
    rng = np.random.default_rng(seed)
    parent = rng.integers(0, 2, beta)
    child = np.where(rng.random(beta) < 0.1, 1 - parent, parent)
    noise = rng.integers(0, 2, size=(beta, 2))
    return StatusMatrix(np.column_stack([parent, child, noise]))


class TestGreedyRescoring:
    def test_finds_true_parent(self):
        statuses = _copy_noise_statuses()
        search = ParentSearch(statuses, TendsConfig())
        parents, diag = search.find_parents(1, [0, 2, 3])
        assert parents == [0]
        assert diag.final_score > diag.empty_score

    def test_no_candidates_returns_empty(self, tiny_statuses):
        search = ParentSearch(tiny_statuses, TendsConfig())
        parents, diag = search.find_parents(0, [])
        assert parents == []
        assert diag.final_score == diag.empty_score
        assert diag.n_candidates == 0

    def test_child_removed_from_pool(self, tiny_statuses):
        search = ParentSearch(tiny_statuses, TendsConfig())
        parents, _ = search.find_parents(0, [0])
        assert parents == []

    def test_pure_noise_selects_nothing(self):
        rng = np.random.default_rng(3)
        statuses = StatusMatrix(rng.integers(0, 2, size=(200, 5)))
        search = ParentSearch(statuses, TendsConfig())
        parents, _ = search.find_parents(0, [1, 2, 3, 4])
        assert parents == []

    def test_min_improvement_gate(self):
        statuses = _copy_noise_statuses()
        strict = ParentSearch(statuses, TendsConfig(min_improvement=1e9))
        parents, _ = strict.find_parents(1, [0, 2, 3])
        assert parents == []

    def test_final_score_is_actual_score(self):
        statuses = _copy_noise_statuses()
        search = ParentSearch(statuses, TendsConfig())
        parents, diag = search.find_parents(1, [0, 2, 3])
        assert diag.final_score == pytest.approx(local_score(statuses, 1, parents))

    def test_diagnostics_counters(self):
        statuses = _copy_noise_statuses()
        search = ParentSearch(statuses, TendsConfig())
        _, diag = search.find_parents(1, [0, 2, 3])
        assert diag.node == 1
        assert diag.n_candidates == 3
        assert diag.n_evaluations > 0
        assert diag.iterations >= 1

    def test_combination_size_two(self):
        statuses = _copy_noise_statuses()
        search = ParentSearch(statuses, TendsConfig(max_combination_size=2))
        parents, _ = search.find_parents(1, [0, 2, 3])
        assert 0 in parents


class TestRankedUnion:
    def test_finds_true_parent(self):
        statuses = _copy_noise_statuses()
        search = ParentSearch(statuses, TendsConfig(search_strategy="ranked-union"))
        parents, _ = search.find_parents(1, [0, 2, 3])
        assert 0 in parents

    def test_respects_size_bound(self):
        # Tiny beta gives a tight Theorem-2 bound: the union cannot absorb
        # all candidates.
        rng = np.random.default_rng(1)
        statuses = StatusMatrix(rng.integers(0, 2, size=(8, 10)))
        search = ParentSearch(statuses, TendsConfig(search_strategy="ranked-union"))
        parents, _ = search.find_parents(0, list(range(1, 10)))
        from repro.core.scoring import delta_i, family_counts, size_bound

        counts = family_counts(statuses, 0, parents)
        assert len(parents) <= size_bound(counts.phi, delta_i(statuses, 0))

    def test_deterministic(self):
        statuses = _copy_noise_statuses()
        search = ParentSearch(statuses, TendsConfig(search_strategy="ranked-union"))
        a, _ = search.find_parents(1, [0, 2, 3])
        b, _ = search.find_parents(1, [0, 2, 3])
        assert a == b


class TestVacuousBoundSafety:
    """Theorem 2's bound self-satisfies for large |F| (phi ~ 2^|F|), so on
    weak-signal data the literal Algorithm-1 strategy grows parent sets
    aggressively; the hard cap and sparse counting must keep that safe."""

    def test_ranked_union_terminates_on_weak_signal(self):
        rng = np.random.default_rng(0)
        # Correlated noise: every pair weakly dependent, so singleton scores
        # beat the empty set and the union wants to absorb everything.
        base = rng.integers(0, 2, (40, 1))
        flips = rng.random((40, 30)) < 0.35
        data = np.where(flips, 1 - base, base).astype(np.uint8)
        statuses = StatusMatrix(data)
        search = ParentSearch(statuses, TendsConfig(search_strategy="ranked-union"))
        parents, diag = search.find_parents(0, list(range(1, 30)))
        from repro.core.search import MAX_PARENT_SET_SIZE

        assert len(parents) <= MAX_PARENT_SET_SIZE
        assert diag.n_evaluations < 10_000

    def test_greedy_handles_wide_parent_sets(self):
        rng = np.random.default_rng(1)
        statuses = StatusMatrix(rng.integers(0, 2, (30, 70)))
        search = ParentSearch(statuses, TendsConfig())
        parents, _ = search.find_parents(0, list(range(1, 70)))
        assert len(parents) <= 62


class TestStrategyComparison:
    def test_both_strategies_recover_strong_signal(self):
        statuses = _copy_noise_statuses(beta=100, seed=7)
        for strategy in ("greedy-rescoring", "ranked-union"):
            search = ParentSearch(statuses, TendsConfig(search_strategy=strategy))
            parents, _ = search.find_parents(1, [0, 2, 3])
            assert 0 in parents, strategy

    def test_greedy_is_at_least_as_selective(self):
        # The rescoring greedy conditions on already-selected parents, so it
        # never returns a superset of what ranked-union returns on noise.
        rng = np.random.default_rng(9)
        statuses = StatusMatrix(rng.integers(0, 2, size=(120, 6)))
        greedy = ParentSearch(statuses, TendsConfig())
        ranked = ParentSearch(statuses, TendsConfig(search_strategy="ranked-union"))
        g_parents, _ = greedy.find_parents(0, [1, 2, 3, 4, 5])
        r_parents, _ = ranked.find_parents(0, [1, 2, 3, 4, 5])
        assert len(g_parents) <= max(len(r_parents), 1)


class TestSearchChunk:
    def test_matches_individual_calls_in_order(self):
        from repro.core.search import search_chunk

        statuses = _copy_noise_statuses(beta=100, seed=7)
        search = ParentSearch(statuses, TendsConfig())
        items = [(1, [0, 2, 3]), (0, [1, 2]), (3, [])]
        chunked = search_chunk(search, items)
        assert len(chunked) == len(items)
        for (node, candidates), (parents, diag) in zip(items, chunked):
            expected_parents, expected_diag = search.find_parents(node, candidates)
            assert parents == expected_parents
            assert diag.node == node
            assert diag.n_evaluations == expected_diag.n_evaluations

    def test_search_is_picklable_with_results_intact(self):
        import pickle

        statuses = _copy_noise_statuses(beta=100, seed=7)
        search = ParentSearch(statuses, TendsConfig())
        clone = pickle.loads(pickle.dumps(search))
        original, _ = search.find_parents(1, [0, 2, 3])
        restored, _ = clone.find_parents(1, [0, 2, 3])
        assert restored == original
        assert clone.config == search.config
