"""Executor observability: chunk spans per backend, recovery WARNING logs."""

import json
import logging
import os

import pytest

from repro.core.executor import ExecutionPlan, ParallelExecutor, RetryPolicy
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.trace import NULL_TRACER, Tracer
from tests.faults import fault_lib

ITEMS = list(range(12))
EXPECTED = fault_lib.expected(ITEMS)


@pytest.fixture
def fault_context(tmp_path):
    context = {"dir": str(tmp_path), "main_pid": os.getpid()}
    yield context
    fault_lib.release_workers(context)


def make_executor(strategy, *, tracer=NULL_TRACER, max_attempts=3):
    plan = ExecutionPlan(
        strategy=strategy,
        n_jobs=2,
        chunk_size=3,
        retry=RetryPolicy(max_attempts=max_attempts, backoff_seconds=0.01),
    )
    return ParallelExecutor(plan, tracer=tracer)


class TestChunkSpans:
    @pytest.mark.parametrize("strategy", ["serial", "thread", "process"])
    def test_chunk_spans_merge_under_dispatch_span(
        self, strategy, fault_context
    ):
        tracer = Tracer()
        executor = make_executor(strategy, tracer=tracer)
        with tracer.span("dispatch") as dispatch:
            results, _ = executor.map(
                fault_lib.echo_chunk, fault_context, ITEMS
            )
        assert results == EXPECTED
        spans = tracer.finished()
        chunks = [s for s in spans if s.name == "executor.chunk"]
        assert len(chunks) == 4  # 12 items / chunk_size 3
        assert all(s.parent_id == dispatch.span_id for s in chunks)
        assert all(s.end >= s.start for s in chunks)

    def test_process_chunk_spans_carry_worker_pids(self, fault_context):
        tracer = Tracer()
        executor = make_executor("process", tracer=tracer)
        results, _ = executor.map(fault_lib.echo_chunk, fault_context, ITEMS)
        assert results == EXPECTED
        if executor.last_report.strategy != "process":
            pytest.skip("process pool unavailable; fell back")
        chunks = [
            s for s in tracer.finished() if s.name == "executor.chunk"
        ]
        assert chunks
        assert all(s.pid != os.getpid() for s in chunks)

    def test_chunk_span_attrs_identify_work(self, fault_context):
        tracer = Tracer()
        executor = make_executor("serial", tracer=tracer)
        executor.map(fault_lib.echo_chunk, fault_context, ITEMS)
        chunks = sorted(
            (s for s in tracer.finished() if s.name == "executor.chunk"),
            key=lambda s: s.attrs["chunk"],
        )
        assert [s.attrs["chunk"] for s in chunks] == [0, 1, 2, 3]
        assert all(s.attrs["items"] == 3 for s in chunks)
        assert all(s.attrs["strategy"] == "serial" for s in chunks)

    @pytest.mark.parametrize("strategy", ["serial", "thread", "process"])
    def test_default_null_tracer_records_nothing(
        self, strategy, fault_context
    ):
        executor = make_executor(strategy)
        results, _ = executor.map(fault_lib.echo_chunk, fault_context, ITEMS)
        assert results == EXPECTED
        assert NULL_TRACER.finished() == ()

    def test_spans_survive_retries_without_duplication(self, fault_context):
        tracer = Tracer()
        executor = make_executor("thread", tracer=tracer)
        results, _ = executor.map(
            fault_lib.raise_once_chunk, fault_context, ITEMS
        )
        assert results == EXPECTED
        assert executor.last_report.retries >= 1
        chunks = [
            s for s in tracer.finished() if s.name == "executor.chunk"
        ]
        # Only successful chunk executions ship spans: one per chunk.
        assert len(chunks) == 4


class TestChromeTraceExport:
    """Adopted worker spans must survive the trip into Chrome trace JSON."""

    def _process_run(self, fault_context):
        tracer = Tracer()
        executor = make_executor("process", tracer=tracer)
        with tracer.span("dispatch") as dispatch:
            results, _ = executor.map(
                fault_lib.echo_chunk, fault_context, ITEMS
            )
        assert results == EXPECTED
        if executor.last_report.strategy != "process":
            pytest.skip("process pool unavailable; fell back")
        return tracer, dispatch

    def test_worker_pids_round_trip_into_lanes(self, fault_context):
        tracer, _dispatch = self._process_run(fault_context)
        document = chrome_trace(
            tracer.finished(), epoch_offset=tracer.epoch_offset
        )
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        chunks = [e for e in events if e["name"] == "executor.chunk"]
        assert len(chunks) == 4
        # Adopted spans keep the worker's pid, not the parent's...
        assert all(e["pid"] != os.getpid() for e in chunks)
        # ...and every (pid, tid) lane is named via thread_name metadata,
        # so workers render as their own rows in the viewer.
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        named_lanes = {(e["pid"], e["tid"]) for e in metadata}
        assert {(e["pid"], e["tid"]) for e in chunks} <= named_lanes
        dispatch_event = next(e for e in events if e["name"] == "dispatch")
        assert (dispatch_event["pid"], dispatch_event["tid"]) in named_lanes

    def test_adopted_spans_nest_under_dispatch_in_args(self, fault_context):
        tracer, dispatch = self._process_run(fault_context)
        document = chrome_trace(tracer.finished())
        chunks = [
            e for e in document["traceEvents"]
            if e.get("name") == "executor.chunk"
        ]
        assert all(
            e["args"]["parent_id"] == dispatch.span_id for e in chunks
        )
        assert all(e["dur"] >= 0 for e in chunks)

    def test_written_trace_is_loadable_with_worker_spans(
        self, fault_context, tmp_path
    ):
        tracer, _dispatch = self._process_run(fault_context)
        target = write_chrome_trace(
            tracer.finished(),
            tmp_path / "trace.json",
            epoch_offset=tracer.epoch_offset,
        )
        loaded = json.loads(target.read_text())
        names = {
            e["name"] for e in loaded["traceEvents"] if e["ph"] == "X"
        }
        assert {"dispatch", "executor.chunk"} <= names
        pids = {
            e["pid"] for e in loaded["traceEvents"]
            if e.get("name") == "executor.chunk"
        }
        assert pids and os.getpid() not in pids


class TestRecoveryLogs:
    LOGGER = "repro.core.executor"

    def _warnings(self, caplog):
        return [
            r for r in caplog.records
            if r.name == self.LOGGER and r.levelno == logging.WARNING
        ]

    def test_serial_retry_logged(self, caplog, fault_context):
        caplog.set_level(logging.WARNING, logger=self.LOGGER)
        executor = make_executor("serial")
        executor.map(fault_lib.raise_once_chunk, fault_context, ITEMS)
        messages = [r.getMessage() for r in self._warnings(caplog)]
        assert any(
            "serial chunk" in m and "retrying after" in m for m in messages
        )

    def test_pool_retry_and_backoff_logged(self, caplog, fault_context):
        caplog.set_level(logging.WARNING, logger=self.LOGGER)
        executor = make_executor("thread")
        executor.map(fault_lib.raise_once_chunk, fault_context, ITEMS)
        messages = [r.getMessage() for r in self._warnings(caplog)]
        assert any(
            "thread chunk" in m and "will retry" in m for m in messages
        )
        assert any("backing off" in m for m in messages)

    def test_pool_rebuild_logged_on_worker_crash(self, caplog, fault_context):
        caplog.set_level(logging.WARNING, logger=self.LOGGER)
        executor = make_executor("process")
        results, _ = executor.map(
            fault_lib.crash_once_chunk, fault_context, ITEMS
        )
        assert results == EXPECTED
        messages = [r.getMessage() for r in self._warnings(caplog)]
        assert any("pool broke" in m and "rebuilding" in m for m in messages)

    def test_fallback_logged_when_backend_gives_up(
        self, caplog, fault_context
    ):
        caplog.set_level(logging.WARNING, logger=self.LOGGER)
        executor = make_executor("process", max_attempts=2)
        results, _ = executor.map(
            fault_lib.crash_always_chunk, fault_context, ITEMS
        )
        assert results == EXPECTED
        assert executor.last_report.fallbacks >= 1
        messages = [r.getMessage() for r in self._warnings(caplog)]
        assert any(
            "unusable" in m and "falling back" in m for m in messages
        )

    def test_clean_run_logs_nothing(self, caplog, fault_context):
        caplog.set_level(logging.WARNING, logger=self.LOGGER)
        executor = make_executor("thread")
        executor.map(fault_lib.echo_chunk, fault_context, ITEMS)
        assert self._warnings(caplog) == []
