"""DiffusionSimulator end-to-end behaviour."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.models import SusceptibleInfectedModel
from repro.simulation.probabilities import constant_probabilities
from repro.simulation.seeds import fixed_seeds


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            DiffusionSimulator(DiffusionGraph(0))

    def test_unfrozen_graph_gets_frozen_copy(self):
        graph = DiffusionGraph(3, [(0, 1)])
        simulator = DiffusionSimulator(graph, seed=0)
        assert simulator.graph.frozen
        assert not graph.frozen

    def test_explicit_probabilities_validated(self, chain_graph):
        with pytest.raises(ConfigurationError):
            DiffusionSimulator(chain_graph, probabilities={})
        with pytest.raises(ConfigurationError):
            DiffusionSimulator(
                chain_graph,
                probabilities={edge: 1.5 for edge in chain_graph.edges()},
            )

    def test_probabilities_drawn_once(self, small_er_graph):
        simulator = DiffusionSimulator(small_er_graph, seed=0)
        assert set(simulator.probabilities) == small_er_graph.edge_set()


class TestRun:
    def test_result_shapes(self, small_er_graph):
        result = DiffusionSimulator(small_er_graph, seed=1).run(beta=10)
        assert result.beta == 10
        assert result.statuses.beta == 10
        assert result.statuses.n_nodes == small_er_graph.n_nodes
        assert len(result.seed_sets) == 10

    def test_beta_validated(self, small_er_graph):
        with pytest.raises(ConfigurationError):
            DiffusionSimulator(small_er_graph, seed=1).run(beta=0)

    def test_deterministic_for_seed(self, small_er_graph):
        a = DiffusionSimulator(small_er_graph, seed=42).run(beta=5)
        b = DiffusionSimulator(small_er_graph, seed=42).run(beta=5)
        assert a.statuses == b.statuses

    def test_different_processes_differ(self, small_er_graph):
        result = DiffusionSimulator(small_er_graph, seed=0).run(beta=30)
        rows = {row.tobytes() for row in result.statuses.values}
        assert len(rows) > 1

    def test_seeds_always_infected(self, small_er_graph):
        result = DiffusionSimulator(small_er_graph, seed=3).run(beta=20)
        statuses = result.statuses
        for row, seed_set in enumerate(result.seed_sets):
            for node in seed_set:
                assert statuses.values[row, node] == 1

    def test_seed_ratio_respected(self, small_er_graph):
        result = DiffusionSimulator(small_er_graph, alpha=0.2, seed=4).run(beta=10)
        for seed_set in result.seed_sets:
            assert len(seed_set) == 5  # ceil(0.2 * 25)

    def test_custom_seed_strategy(self, chain_graph):
        simulator = DiffusionSimulator(
            chain_graph, seed=0, seed_strategy=fixed_seeds([0])
        )
        result = simulator.run(beta=5)
        assert all(s == frozenset({0}) for s in result.seed_sets)

    def test_custom_model(self, chain_graph):
        simulator = DiffusionSimulator(
            chain_graph,
            seed=0,
            model=SusceptibleInfectedModel(horizon=1),
            seed_strategy=fixed_seeds([0]),
            probabilities=constant_probabilities(chain_graph, 0.99),
        )
        result = simulator.run(beta=3)
        # Horizon 1: infection can reach at most node 1.
        assert result.statuses.values[:, 2:].sum() == 0

    def test_infection_fraction_bounds(self, small_er_graph):
        result = DiffusionSimulator(small_er_graph, alpha=0.15, seed=0).run(beta=10)
        fraction = result.infection_fraction()
        assert 0.0 < fraction <= 1.0
        # at least the seeds are infected:
        assert fraction >= 0.15 * 0.9

    def test_cascade_view_consistent_with_statuses(self, small_observations):
        statuses = small_observations.statuses
        from_cascades = small_observations.cascades.to_status_matrix()
        assert statuses == from_cascades
