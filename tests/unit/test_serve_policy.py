"""Unit tests for the ingest batching/backpressure policies."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ConfigurationError, ServiceError
from repro.serve.policy import BatchPolicy, BoundedQueue


class FakeClock:
    """Deterministic monotonic clock the queue/age tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBatchPolicy:
    def test_fires_on_cascade_count(self):
        policy = BatchPolicy(max_cascades=10, max_delay_seconds=5.0)
        assert not policy.ready(9, 0.0)
        assert policy.ready(10, 0.0)
        assert policy.ready(11, 0.0)

    def test_fires_on_oldest_age(self):
        policy = BatchPolicy(max_cascades=1000, max_delay_seconds=0.5)
        assert not policy.ready(1, 0.49)
        assert policy.ready(1, 0.5)

    def test_never_fires_empty(self):
        policy = BatchPolicy(max_cascades=1, max_delay_seconds=0.001)
        assert not policy.ready(0, 999.0)

    def test_wait_budget_counts_down_to_the_delay_bound(self):
        policy = BatchPolicy(max_cascades=1000, max_delay_seconds=1.0)
        assert policy.wait_budget(0.25) == pytest.approx(0.75)
        assert policy.wait_budget(2.0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_cascades": 0}, {"max_delay_seconds": 0.0},
         {"max_delay_seconds": -1.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchPolicy(**kwargs)


class TestBoundedQueueBasics:
    def test_fifo_take_and_weight_accounting(self):
        queue = BoundedQueue(100, "block")
        queue.put("a", 10)
        queue.put("b", 20)
        queue.put("c", 5)
        assert queue.weight == 35
        assert len(queue) == 3
        items = queue.take()
        assert [item.payload for item in items] == ["a", "b", "c"]
        assert queue.weight == 0 and len(queue) == 0

    def test_take_respects_max_weight_but_returns_at_least_one(self):
        queue = BoundedQueue(100)
        queue.put("a", 30)
        queue.put("b", 30)
        queue.put("c", 30)
        first = queue.take(max_weight=50)
        assert [item.payload for item in first] == ["a"]
        # A single over-budget head item still comes out.
        rest = queue.take(max_weight=1)
        assert [item.payload for item in rest] == ["b"]

    def test_oldest_age_uses_injected_clock(self):
        clock = FakeClock()
        queue = BoundedQueue(100, clock=clock)
        assert queue.oldest_age() == 0.0
        queue.put("a", 1)
        clock.advance(2.5)
        assert queue.oldest_age() == pytest.approx(2.5)

    def test_requeue_front_restores_order_ignoring_capacity(self):
        queue = BoundedQueue(10)
        queue.put("c", 5)
        taken_elsewhere = BoundedQueue(100)
        taken_elsewhere.put("a", 5)
        taken_elsewhere.put("b", 5)
        queue.requeue_front(taken_elsewhere.take())
        assert queue.weight == 15  # over capacity by design
        assert [item.payload for item in queue.take()] == ["a", "b", "c"]

    def test_oversized_item_accepted_only_when_empty(self):
        queue = BoundedQueue(10, "reject")
        queue.put("huge", 50)  # empty queue: admitted to avoid deadlock
        with pytest.raises(ServiceError):
            queue.put("next", 1)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            BoundedQueue(0)
        with pytest.raises(ConfigurationError):
            BoundedQueue(10, "drop-newest")
        with pytest.raises(ConfigurationError):
            BoundedQueue(10).put("x", 0)


class TestBackpressurePolicies:
    def test_reject_raises_and_counts_when_full(self):
        queue = BoundedQueue(10, "reject")
        queue.put("a", 6)
        with pytest.raises(ServiceError, match="reject"):
            queue.put("b", 6)
        assert queue.rejected_total == 1
        assert [item.payload for item in queue.take()] == ["a"]

    def test_shed_drops_oldest_and_reports_them(self):
        queue = BoundedQueue(10, "shed")
        queue.put("a", 4)
        queue.put("b", 4)
        shed = queue.put("c", 8)
        assert shed == ["a", "b"]
        assert queue.shed_total == 2
        assert [item.payload for item in queue.take()] == ["c"]

    def test_block_times_out(self):
        queue = BoundedQueue(10, "block")
        queue.put("a", 10)
        started = time.monotonic()
        with pytest.raises(ServiceError, match="timed out"):
            queue.put("b", 1, timeout=0.05)
        assert time.monotonic() - started < 2.0
        assert queue.blocked_total >= 1

    def test_block_wakes_when_consumer_drains(self):
        queue = BoundedQueue(10, "block")
        queue.put("a", 10)
        admitted = threading.Event()

        def producer():
            queue.put("b", 5, timeout=5.0)
            admitted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        queue.take()
        assert admitted.wait(5.0)
        thread.join(5.0)
        assert [item.payload for item in queue.take()] == ["b"]


class TestCloseSemantics:
    def test_close_refuses_puts_but_drains_pending(self):
        queue = BoundedQueue(10)
        queue.put("a", 1)
        queue.close()
        assert queue.closed
        with pytest.raises(ServiceError, match="closed"):
            queue.put("b", 1)
        assert [item.payload for item in queue.take()] == ["a"]

    def test_close_wakes_blocked_producer(self):
        queue = BoundedQueue(5, "block")
        queue.put("a", 5)
        failed = threading.Event()

        def producer():
            try:
                queue.put("b", 5, timeout=5.0)
            except ServiceError:
                failed.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        assert failed.wait(5.0)
        thread.join(5.0)

    def test_wait_for_items_returns_false_when_closed_and_empty(self):
        queue = BoundedQueue(5)
        queue.close()
        assert queue.wait_for_items(0.01) is False
