"""Metrics registry: counters, gauges, histograms, merge, null path."""

import math
import threading

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics, metric_key


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("tends_threshold_tau") == "tends_threshold_tau"

    def test_labels_sorted_and_rendered(self):
        key = metric_key("executor_retries_total", {"b": 2, "a": "x"})
        assert key == 'executor_retries_total{a="x",b="2"}'

    def test_empty_labels_is_bare(self):
        assert metric_key("n", {}) == "n"


class TestRegistry:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("hits")
        metrics.inc("hits", 4)
        assert metrics.snapshot()["counters"]["hits"] == 5

    def test_counter_labels_are_distinct_series(self):
        metrics = MetricsRegistry()
        metrics.inc("retries", strategy="process")
        metrics.inc("retries", strategy="thread")
        counters = metrics.snapshot()["counters"]
        assert counters['retries{strategy="process"}'] == 1
        assert counters['retries{strategy="thread"}'] == 1

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("tau", 0.1)
        metrics.set_gauge("tau", 0.025)
        assert metrics.snapshot()["gauges"]["tau"] == 0.025

    def test_histogram_summary_stats(self):
        metrics = MetricsRegistry()
        for value in (3, 1, 2):
            metrics.observe("iters", value)
        cell = metrics.snapshot()["histograms"]["iters"]
        assert cell == {"count": 3, "sum": 6.0, "min": 1, "max": 3}

    def test_snapshot_is_a_copy(self):
        metrics = MetricsRegistry()
        metrics.inc("hits")
        snap = metrics.snapshot()
        snap["counters"]["hits"] = 99
        assert metrics.snapshot()["counters"]["hits"] == 1

    def test_empty_snapshot_shape(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.inc("hits", 2)
        a.set_gauge("tau", 0.1)
        a.observe("iters", 5)
        b = MetricsRegistry()
        b.inc("hits", 3)
        b.inc("misses")
        b.set_gauge("tau", 0.2)
        b.observe("iters", 1)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"hits": 5, "misses": 1}
        assert snap["gauges"]["tau"] == 0.2  # incoming wins
        assert snap["histograms"]["iters"] == {
            "count": 2, "sum": 6.0, "min": 1, "max": 5,
        }

    def test_merge_empty_snapshot_is_noop(self):
        metrics = MetricsRegistry()
        metrics.inc("hits")
        metrics.merge({})
        assert metrics.snapshot()["counters"] == {"hits": 1}

    def test_thread_safety_of_counters(self):
        metrics = MetricsRegistry()

        def bump():
            for _ in range(1000):
                metrics.inc("hits")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.snapshot()["counters"]["hits"] == 4000

    def test_fresh_histogram_bounds_are_infinite(self):
        metrics = MetricsRegistry()
        metrics.observe("x", 7)
        cell = metrics.snapshot()["histograms"]["x"]
        assert cell["min"] == 7 and cell["max"] == 7
        assert math.isfinite(cell["min"])


class TestNullMetrics:
    def test_disabled_and_discarding(self):
        null = NullMetrics()
        null.inc("hits", 10, strategy="process")
        null.set_gauge("tau", 0.5)
        null.observe("iters", 3)
        null.merge({"counters": {"hits": 1}, "gauges": {}, "histograms": {}})
        assert null.enabled is False
        assert null.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_shared_singleton(self):
        assert isinstance(NULL_METRICS, NullMetrics)
        assert NULL_METRICS.enabled is False
