"""StatusMatrix counting machinery (the substrate of scoring and IMI)."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix


class TestConstruction:
    def test_basic(self, tiny_statuses):
        assert tiny_statuses.beta == 6
        assert tiny_statuses.n_nodes == 3

    def test_rejects_non_binary(self):
        with pytest.raises(DataError):
            StatusMatrix([[0, 2]])

    def test_rejects_wrong_rank(self):
        with pytest.raises(DataError):
            StatusMatrix([0, 1, 1])

    def test_values_read_only(self, tiny_statuses):
        with pytest.raises(ValueError):
            tiny_statuses.values[0, 0] = 1

    def test_accepts_bool_array(self):
        matrix = StatusMatrix(np.array([[True, False]]))
        assert matrix.values.dtype == np.uint8


class TestAccessors:
    def test_column(self, tiny_statuses):
        assert tiny_statuses.column(0).tolist() == [1, 1, 0, 0, 1, 0]

    def test_process(self, tiny_statuses):
        assert tiny_statuses.process(1).tolist() == [1, 1, 1]

    def test_infection_counts(self, tiny_statuses):
        assert tiny_statuses.infection_counts().tolist() == [3, 3, 3]

    def test_infection_rates(self, tiny_statuses):
        assert tiny_statuses.infection_rates().tolist() == [0.5, 0.5, 0.5]

    def test_rates_need_processes(self):
        with pytest.raises(DataError):
            StatusMatrix(np.zeros((0, 3))).infection_rates()


class TestJointCounts:
    def test_consistency(self, tiny_statuses):
        joints = tiny_statuses.joint_counts()
        total = joints["11"] + joints["10"] + joints["01"] + joints["00"]
        assert (total == tiny_statuses.beta).all()

    def test_hand_checked_pair(self, tiny_statuses):
        joints = tiny_statuses.joint_counts()
        # Columns 0 and 1: rows (1,1),(1,1),(0,0),(0,1),(1,0),(0,0)
        assert joints["11"][0, 1] == 2
        assert joints["10"][0, 1] == 1
        assert joints["01"][0, 1] == 1
        assert joints["00"][0, 1] == 2

    def test_diagonal_is_marginal(self, tiny_statuses):
        joints = tiny_statuses.joint_counts()
        assert joints["11"][0, 0] == 3
        assert joints["10"][0, 0] == 0


class TestPatternCounts:
    def test_empty_columns(self, tiny_statuses):
        codes, counts = tiny_statuses.pattern_counts([])
        assert codes.tolist() == [0] * 6
        assert counts.tolist() == [6]

    def test_single_column(self, tiny_statuses):
        codes, counts = tiny_statuses.pattern_counts([0])
        assert counts.tolist() == [3, 3]
        assert codes.tolist() == [1, 1, 0, 0, 1, 0]

    def test_two_columns_bit_order(self, tiny_statuses):
        codes, counts = tiny_statuses.pattern_counts([0, 1])
        # code = col0 + 2 * col1
        assert codes.tolist() == [3, 3, 0, 2, 1, 0]
        assert counts.tolist() == [2, 1, 1, 2]

    def test_counts_cover_all_patterns(self, tiny_statuses):
        _, counts = tiny_statuses.pattern_counts([0, 1, 2])
        assert counts.shape == (8,)
        assert counts.sum() == 6

    def test_dense_column_cap(self):
        matrix = StatusMatrix(np.zeros((2, 70), dtype=int))
        with pytest.raises(DataError):
            matrix.pattern_counts(list(range(21)))


class TestObservedPatternCounts:
    def test_empty_columns(self, tiny_statuses):
        ids, inverse, counts = tiny_statuses.observed_pattern_counts([])
        assert ids.tolist() == [0]
        assert inverse.tolist() == [0] * 6
        assert counts.tolist() == [6]

    def test_matches_dense_counts(self, tiny_statuses):
        dense_codes, dense_counts = tiny_statuses.pattern_counts([0, 1])
        ids, inverse, counts = tiny_statuses.observed_pattern_counts([0, 1])
        for pattern, count in zip(ids.tolist(), counts.tolist()):
            assert dense_counts[pattern] == count
        assert counts.sum() == tiny_statuses.beta
        # inverse maps rows back to their observed pattern id
        assert (ids[inverse] == dense_codes).all()

    def test_only_observed_patterns_materialised(self):
        statuses = StatusMatrix([[0] * 30, [1] * 30])  # 2 patterns of 2^30
        ids, _, counts = statuses.observed_pattern_counts(list(range(30)))
        assert ids.shape == (2,)
        assert counts.tolist() == [1, 1]

    def test_wide_column_sets_supported(self):
        statuses = StatusMatrix(np.zeros((3, 62), dtype=int))
        ids, _, counts = statuses.observed_pattern_counts(list(range(62)))
        assert counts.tolist() == [3]

    def test_bit_packing_limit(self):
        statuses = StatusMatrix(np.zeros((2, 70), dtype=int))
        with pytest.raises(DataError):
            statuses.observed_pattern_counts(list(range(63)))


class TestTransforms:
    def test_subset(self, tiny_statuses):
        sub = tiny_statuses.subset([0, 2, 4])
        assert sub.beta == 3
        assert sub.column(0).tolist() == [1, 0, 1]

    def test_flip_noise_zero_is_identity(self, tiny_statuses):
        assert tiny_statuses.with_flip_noise(0.0, seed=0) == tiny_statuses

    def test_flip_noise_one_inverts(self, tiny_statuses):
        flipped = tiny_statuses.with_flip_noise(1.0, seed=0)
        assert (flipped.values == 1 - tiny_statuses.values).all()

    def test_flip_noise_deterministic(self, tiny_statuses):
        a = tiny_statuses.with_flip_noise(0.3, seed=5)
        b = tiny_statuses.with_flip_noise(0.3, seed=5)
        assert a == b

    def test_select_nodes(self, tiny_statuses):
        selected = tiny_statuses.select_nodes([2, 0])
        assert selected.n_nodes == 2
        assert selected.column(0).tolist() == tiny_statuses.column(2).tolist()
        assert selected.column(1).tolist() == tiny_statuses.column(0).tolist()

    def test_select_nodes_rejects_duplicates(self, tiny_statuses):
        with pytest.raises(DataError):
            tiny_statuses.select_nodes([0, 0])


class TestDunders:
    def test_equality_and_hash(self, tiny_statuses):
        clone = StatusMatrix(tiny_statuses.values.copy())
        assert clone == tiny_statuses
        assert hash(clone) == hash(tiny_statuses)

    def test_inequality(self, tiny_statuses):
        other = StatusMatrix(np.zeros((6, 3), dtype=int))
        assert other != tiny_statuses
        assert tiny_statuses != "nope"

    def test_repr(self, tiny_statuses):
        assert "beta=6" in repr(tiny_statuses)

    def test_pickle_round_trip_preserves_data_and_immutability(self, tiny_statuses):
        # The process execution backend ships StatusMatrix to workers;
        # the copy must be equal AND keep the read-only invariant.
        import pickle

        clone = pickle.loads(pickle.dumps(tiny_statuses))
        assert clone == tiny_statuses
        assert hash(clone) == hash(tiny_statuses)
        assert not clone.values.flags.writeable
