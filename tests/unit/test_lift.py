"""LIFT baseline: lifting effects from seed sets."""

import numpy as np
import pytest

from repro.baselines.base import Observations
from repro.baselines.lift import Lift
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.statuses import StatusMatrix


def _seeded_observations() -> Observations:
    """Node 0 seeded in half the processes; node 1 infected iff 0 seeded;
    node 2 infected at random."""
    rng = np.random.default_rng(0)
    beta = 80
    seeded = np.arange(beta) % 2 == 0
    statuses = np.zeros((beta, 3), dtype=np.uint8)
    statuses[:, 0] = seeded
    statuses[:, 1] = np.where(seeded, 1, 0)
    statuses[:, 2] = rng.integers(0, 2, beta)
    seed_sets = tuple(
        frozenset({0}) if s else frozenset({2}) for s in seeded
    )
    return Observations(
        n_nodes=3, statuses=StatusMatrix(statuses), seed_sets=seed_sets
    )


class TestLiftMatrix:
    def test_perfect_lift(self):
        lift = Lift().lift_matrix(_seeded_observations())
        assert lift[0, 1] == pytest.approx(1.0)

    def test_random_target_near_zero(self):
        lift = Lift().lift_matrix(_seeded_observations())
        assert abs(lift[0, 2]) < 0.3

    def test_diagonal_is_neg_inf(self):
        lift = Lift().lift_matrix(_seeded_observations())
        assert np.isneginf(np.diag(lift)).all()

    def test_unsupported_rows_are_neg_inf(self):
        # Node 1 is never a seed -> no support for conditioning on it.
        lift = Lift(min_support=1).lift_matrix(_seeded_observations())
        assert np.isneginf(lift[1]).all()

    def test_requires_seed_sets(self, tiny_statuses):
        with pytest.raises(DataError):
            Lift().lift_matrix(Observations.from_statuses(tiny_statuses))


class TestInfer:
    def test_top_edge_is_true_influence(self):
        output = Lift(n_edges=1).infer(_seeded_observations())
        assert output.graph.edge_set() == {(0, 1)}

    def test_budget_respected(self, small_observations):
        obs = Observations.from_simulation(small_observations)
        output = Lift(n_edges=10).infer(obs)
        assert output.n_edges <= 10

    def test_threshold_mode(self):
        output = Lift(n_edges=None, min_lift=0.5).infer(_seeded_observations())
        assert (0, 1) in output.graph.edge_set()
        assert all(score > 0.5 for score in output.edge_scores.values())

    def test_scores_attached(self):
        output = Lift(n_edges=2).infer(_seeded_observations())
        assert set(output.edge_scores) == output.graph.edge_set()

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            Lift(n_edges=0)
