"""Bootstrap IMI uncertainty: CI sanity, determinism, stability rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.imi import infection_mi_matrix, traditional_mi_matrix
from repro.exceptions import DataError
from repro.robustness import bootstrap_imi, missing_at_random
from repro.simulation.statuses import StatusMatrix


@pytest.fixture(scope="module")
def statuses() -> StatusMatrix:
    rng = np.random.default_rng(3)
    base = (rng.random((80, 8)) < 0.35).astype(int)
    # Couple node 1 to node 0 so at least one pair has real signal.
    base[:, 1] = np.where(rng.random(80) < 0.8, base[:, 0], base[:, 1])
    return StatusMatrix(base)


@pytest.fixture(scope="module")
def boot(statuses):
    return bootstrap_imi(statuses, 60, seed=5)


class TestBootstrapImi:
    def test_point_matches_direct_estimate(self, statuses, boot):
        np.testing.assert_array_equal(boot.point, infection_mi_matrix(statuses))

    def test_sample_stack_shape(self, statuses, boot):
        assert boot.samples.shape == (60, statuses.n_nodes, statuses.n_nodes)
        assert boot.n_samples == 60

    def test_deterministic_under_seed(self, statuses, boot):
        again = bootstrap_imi(statuses, 60, seed=5)
        np.testing.assert_array_equal(boot.samples, again.samples)
        assert again.seed == 5

    def test_different_seed_resamples_differently(self, statuses, boot):
        other = bootstrap_imi(statuses, 60, seed=6)
        assert not np.array_equal(boot.samples, other.samples)

    def test_traditional_kind_uses_traditional_mi(self, statuses):
        boot = bootstrap_imi(statuses, 5, seed=1, mi_kind="traditional")
        np.testing.assert_array_equal(boot.point, traditional_mi_matrix(statuses))

    def test_masked_input_is_accepted(self, statuses):
        masked = missing_at_random(statuses, 0.2, seed=9).statuses
        boot = bootstrap_imi(masked, 10, seed=2)
        assert np.isfinite(boot.samples).all()

    def test_invalid_arguments(self, statuses):
        with pytest.raises(DataError, match="n_samples"):
            bootstrap_imi(statuses, 0)
        with pytest.raises(DataError, match="ci_level"):
            bootstrap_imi(statuses, 5, ci_level=1.0)
        with pytest.raises(DataError, match="mi_kind"):
            bootstrap_imi(statuses, 5, mi_kind="mutual")
        with pytest.raises(DataError, match="zero diffusion"):
            bootstrap_imi(StatusMatrix(np.empty((0, 4))), 5)


class TestIntervalsAndStability:
    def test_ci_bounds_ordered_and_bracket_quantiles(self, boot):
        lower, upper = boot.ci()
        assert (lower <= upper).all()
        wider_lower, wider_upper = boot.ci(0.5)
        assert (wider_lower >= lower).all()
        assert (wider_upper <= upper).all()

    def test_ci_level_validated(self, boot):
        with pytest.raises(DataError, match="ci level"):
            boot.ci(0.0)

    def test_exceed_fraction_bounds(self, boot):
        frac = boot.exceed_fraction(0.01)
        assert ((0.0 <= frac) & (frac <= 1.0)).all()
        # Below the global minimum, every resample exceeds.
        assert (boot.exceed_fraction(boot.samples.min() - 1.0) == 1.0).all()
        assert (boot.exceed_fraction(boot.samples.max() + 1.0) == 0.0).all()

    def test_stable_above_matches_ci_lower_bound(self, boot):
        threshold = float(np.median(boot.point))
        lower, _ = boot.ci()
        np.testing.assert_array_equal(
            boot.stable_above(threshold), lower > threshold
        )

    def test_stable_is_stricter_than_point_threshold(self, boot):
        threshold = float(np.median(boot.point))
        stable = boot.stable_above(threshold)
        # Stability can only remove pairs relative to point-thresholding,
        # up to resampling noise on pairs already above threshold; it must
        # never certify a pair whose CI straddles the threshold.
        lower, upper = boot.ci()
        straddles = (lower <= threshold) & (upper > threshold)
        assert not (stable & straddles).any()
