"""Naive phi-coefficient baseline."""

import numpy as np
import pytest

from repro.baselines.base import Observations
from repro.baselines.correlation import CorrelationRanker, phi_coefficient_matrix
from repro.exceptions import ConfigurationError
from repro.simulation.statuses import StatusMatrix


class TestPhiMatrix:
    def test_perfect_correlation(self):
        column = np.array([0, 1] * 10)
        phi = phi_coefficient_matrix(np.stack([column, column], axis=1))
        assert phi[0, 1] == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        column = np.array([0, 1] * 10)
        phi = phi_coefficient_matrix(np.stack([column, 1 - column], axis=1))
        assert phi[0, 1] == pytest.approx(-1.0)

    def test_constant_column_is_zero(self):
        data = np.column_stack([np.ones(10, dtype=int), np.arange(10) % 2])
        phi = phi_coefficient_matrix(data)
        assert phi[0, 1] == 0.0

    def test_diagonal_zeroed(self):
        rng = np.random.default_rng(0)
        phi = phi_coefficient_matrix(rng.integers(0, 2, (30, 4)))
        assert np.allclose(np.diag(phi), 0.0)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        phi = phi_coefficient_matrix(rng.integers(0, 2, (30, 5)))
        assert np.allclose(phi, phi.T)

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            phi_coefficient_matrix(np.zeros((0, 3)))


class TestCorrelationRanker:
    def test_emits_reciprocal_couples(self):
        column = np.array([0, 1] * 20)
        other = np.where(np.arange(40) % 5 == 0, 1 - column, column)
        statuses = StatusMatrix(np.column_stack([column, other, np.zeros(40, int)]))
        output = CorrelationRanker(n_edges=2).infer(
            Observations.from_statuses(statuses)
        )
        assert output.graph.edge_set() == {(0, 1), (1, 0)}

    def test_budget_respected(self, small_observations):
        obs = Observations.from_statuses(small_observations.statuses)
        output = CorrelationRanker(n_edges=7).infer(obs)
        assert output.n_edges <= 7

    def test_stops_at_non_positive_phi(self):
        rng = np.random.default_rng(2)
        statuses = StatusMatrix(rng.integers(0, 2, (10, 4)))
        output = CorrelationRanker(n_edges=100).infer(
            Observations.from_statuses(statuses)
        )
        assert all(score > 0 for score in output.edge_scores.values())

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            CorrelationRanker(n_edges=0)
