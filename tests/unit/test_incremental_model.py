"""Snapshot/restore and fault-tolerance tests for :class:`TendsModel`.

The snapshot contract (docs/INCREMENTAL.md): ``save``/``load`` round-trips
are bit-stable, ``load`` refuses tampered or mismatched snapshots with
:class:`CheckpointError` instead of degrading silently, and an interrupted
``partial_fit`` leaves the previous model intact (copy-on-write).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.tends import Tends, TendsModel
from repro.exceptions import CheckpointError, ConfigurationError
from repro.simulation.statuses import StatusMatrix


def _history(beta=40, n=8, seed=0, mask_fraction=0.0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, size=(beta, n), dtype=np.uint8)
    mask = None
    if mask_fraction:
        mask = rng.random((beta, n)) >= mask_fraction
    return StatusMatrix(data, mask)


def _fitted(statuses, **overrides):
    estimator = Tends(audit="ignore", **overrides)
    estimator.fit(statuses)
    return estimator


def _tamper(path, mutate):
    """Rewrite the NPZ at ``path`` after applying ``mutate(arrays)``."""
    with np.load(path) as archive:
        arrays = {name: archive[name].copy() for name in archive.files}
    mutate(arrays)
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def _rewrite_meta(arrays, mutate):
    meta = json.loads(bytes(bytearray(arrays["meta_json"])).decode())
    mutate(meta)
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
    )


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("mask_fraction", [0.0, 0.3])
    def test_round_trip_is_bit_stable(self, tmp_path, mask_fraction):
        statuses = _history(mask_fraction=mask_fraction)
        estimator = _fitted(statuses)
        model = estimator.model
        loaded = TendsModel.load(model.save(tmp_path / "model.npz"))

        assert loaded.stats.equals(model.stats)
        assert loaded.stats.checksum() == model.stats.checksum()
        assert loaded.statuses == model.statuses
        assert loaded.threshold == model.threshold
        assert loaded.candidates == model.candidates
        assert loaded.parent_sets == model.parent_sets
        assert loaded.diagnostics == model.diagnostics
        assert loaded.config == model.config
        assert loaded.data_fingerprint() == model.data_fingerprint()
        assert set(loaded.graph().edge_set()) == set(model.graph().edge_set())

    def test_resumed_model_updates_bit_identically(self, tmp_path):
        statuses = _history(seed=1)
        batch = _history(beta=10, seed=2)

        original = _fitted(statuses)
        path = original.model.save(tmp_path / "model.npz")
        direct = original.partial_fit(batch)

        resumed = Tends.from_model(TendsModel.load(path))
        restored = resumed.partial_fit(batch)

        assert restored.parent_sets == direct.parent_sets
        assert np.array_equal(restored.mi_matrix, direct.mi_matrix)
        assert restored.threshold == direct.threshold
        assert restored.update.dirty_nodes == direct.update.dirty_nodes

    def test_save_load_save_is_stable(self, tmp_path):
        estimator = _fitted(_history(seed=3, mask_fraction=0.2))
        first = estimator.model.save(tmp_path / "a.npz")
        loaded = TendsModel.load(first)
        second = loaded.save(tmp_path / "b.npz")
        assert first.read_bytes() == second.read_bytes()


class TestLoadRefusals:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        estimator = _fitted(_history(seed=4))
        return estimator.model.save(tmp_path / "model.npz")

    def test_tampered_history_fails_data_fingerprint(self, snapshot):
        def flip_status(arrays):
            arrays["statuses"][0, 0] ^= 1

        _tamper(snapshot, flip_status)
        with pytest.raises(CheckpointError, match="data-fingerprint"):
            TendsModel.load(snapshot)

    def test_tampered_counts_fail_stats_checksum(self, snapshot):
        def bump_count(arrays):
            arrays["counts_11"][0, 1] += 1

        _tamper(snapshot, bump_count)
        with pytest.raises(CheckpointError, match="checksum"):
            TendsModel.load(snapshot)

    def test_tampered_config_fails_fingerprint(self, snapshot):
        def change_scale(arrays):
            _rewrite_meta(
                arrays, lambda meta: meta["config"].update(threshold_scale=0.5)
            )

        _tamper(snapshot, change_scale)
        with pytest.raises(CheckpointError, match="config-fingerprint"):
            TendsModel.load(snapshot)

    def test_unknown_format_refused(self, snapshot):
        def wrong_format(arrays):
            _rewrite_meta(arrays, lambda meta: meta.update(format="other"))

        _tamper(snapshot, wrong_format)
        with pytest.raises(CheckpointError, match="not a TENDS model"):
            TendsModel.load(snapshot)

    def test_future_version_refused(self, snapshot):
        def future_version(arrays):
            _rewrite_meta(arrays, lambda meta: meta.update(version=99))

        _tamper(snapshot, future_version)
        with pytest.raises(CheckpointError, match="version"):
            TendsModel.load(snapshot)

    def test_missing_metadata_refused(self, tmp_path):
        path = tmp_path / "bare.npz"
        with open(path, "wb") as handle:
            np.savez(handle, statuses=np.zeros((2, 2), dtype=np.uint8))
        with pytest.raises(CheckpointError, match="no metadata"):
            TendsModel.load(path)

    def test_garbage_file_refused(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an npz archive at all")
        with pytest.raises(CheckpointError, match="cannot read"):
            TendsModel.load(path)

    def test_missing_file_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            TendsModel.load(tmp_path / "absent.npz")


class TestFromModel:
    def test_algorithm_override_refused(self, tmp_path):
        model = _fitted(_history(seed=5)).model
        with pytest.raises(ConfigurationError, match="mi_kind"):
            Tends.from_model(model, mi_kind="traditional")

    def test_execution_overrides_allowed_and_equivalent(self):
        statuses = _history(seed=6)
        batch = _history(beta=12, seed=7)
        direct = _fitted(statuses).partial_fit(batch)
        parallel = Tends.from_model(
            _fitted(statuses).model, executor="thread", n_jobs=2, chunk_size=2
        )
        result = parallel.partial_fit(batch)
        assert result.parent_sets == direct.parent_sets
        assert np.array_equal(result.mi_matrix, direct.mi_matrix)


class TestCopyOnWrite:
    def test_interrupted_partial_fit_keeps_previous_model(self, monkeypatch):
        statuses = _history(seed=8)
        batch = _history(beta=10, seed=9)
        estimator = _fitted(statuses, executor="serial", max_attempts=1)
        before = estimator.model

        def explode(context, items):
            raise RuntimeError("worker lost mid-search")

        with monkeypatch.context() as patch:
            patch.setattr("repro.core.tends.search_chunk", explode)
            with pytest.raises(RuntimeError, match="worker lost"):
                estimator.partial_fit(batch)

        # The failed update never touched the installed model ...
        assert estimator.model is before
        # ... so the retry proceeds from unchanged state and still matches
        # a one-shot fit of the concatenated history.
        retried = estimator.partial_fit(batch)
        full = Tends(audit="ignore").fit(statuses.append(batch))
        assert retried.parent_sets == full.parent_sets
        assert np.array_equal(retried.mi_matrix, full.mi_matrix)
        assert retried.threshold == full.threshold

    def test_failed_batch_validation_keeps_previous_model(self):
        estimator = _fitted(_history(seed=10), missing="refuse")
        before = estimator.model
        with pytest.raises(Exception):
            estimator.partial_fit(_history(beta=5, seed=11, mask_fraction=0.4))
        assert estimator.model is before
