"""Diffusion process models (IC and SI)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.models import (
    IndependentCascadeModel,
    LinearThresholdModel,
    SusceptibleInfectedModel,
)
from repro.simulation.probabilities import constant_probabilities
from repro.utils.rng import as_generator


def _run(model, graph, p, seeds, seed=0):
    return model.run(graph, constant_probabilities(graph, p), np.array(seeds), as_generator(seed))


class TestIndependentCascade:
    def test_seeds_at_time_zero(self, chain_graph):
        times = _run(IndependentCascadeModel(), chain_graph, 0.99, [0])
        assert times[0] == 0.0

    def test_chain_infection_times_are_rounds(self, chain_graph):
        times = _run(IndependentCascadeModel(), chain_graph, 0.99, [0], seed=1)
        for node, time in times.items():
            assert time == float(node)  # chain: node i infected in round i

    def test_probability_zero_stops_at_seeds(self, chain_graph):
        times = _run(IndependentCascadeModel(), chain_graph, 0.01, [0], seed=2)
        assert set(times) >= {0}
        assert len(times) <= 2  # p=0.01 rarely fires

    def test_duplicate_seeds_collapse(self, chain_graph):
        times = _run(IndependentCascadeModel(), chain_graph, 0.5, [0, 0, 0])
        assert times[0] == 0.0

    def test_single_attempt_per_edge(self):
        # In IC each edge fires at most once: with p tiny, node 1 is never
        # infected after round 1 even over many rounds.
        graph = DiffusionGraph(2, [(0, 1)]).freeze()
        infected = 0
        for trial in range(200):
            times = _run(IndependentCascadeModel(), graph, 0.3, [0], seed=trial)
            if 1 in times:
                infected += 1
                assert times[1] == 1.0  # only possible in round 1
        assert 30 < infected < 90  # ~Binomial(200, 0.3)

    def test_missing_probability_raises(self, chain_graph):
        model = IndependentCascadeModel()
        with pytest.raises(SimulationError):
            model.run(chain_graph, {}, np.array([0]), as_generator(0))

    def test_max_rounds_guard(self, chain_graph):
        model = IndependentCascadeModel(max_rounds=1)
        with pytest.raises(SimulationError):
            # p=0.99 keeps the frontier moving past round 1 on a chain.
            for trial in range(50):
                model.run(
                    chain_graph,
                    constant_probabilities(chain_graph, 0.99),
                    np.array([0]),
                    as_generator(trial),
                )

    def test_repr(self):
        assert "max_rounds" in repr(IndependentCascadeModel())


class TestSusceptibleInfected:
    def test_retries_every_round(self):
        # With p=0.3 and horizon 20, P(edge never fires) = 0.7^20 ~ 0.0008.
        graph = DiffusionGraph(2, [(0, 1)]).freeze()
        infected = sum(
            1
            for trial in range(100)
            if 1 in _run(SusceptibleInfectedModel(horizon=20), graph, 0.3, [0], seed=trial)
        )
        assert infected >= 95

    def test_horizon_limits_depth(self, chain_graph):
        times = _run(SusceptibleInfectedModel(horizon=2), chain_graph, 0.99, [0], seed=0)
        assert all(t <= 2.0 for t in times.values())
        assert 4 not in times  # node 4 needs four rounds

    def test_stops_when_everyone_infected(self, chain_graph):
        times = _run(SusceptibleInfectedModel(horizon=100), chain_graph, 0.99, [0], seed=0)
        assert len(times) == chain_graph.n_nodes

    def test_repr(self):
        assert "horizon" in repr(SusceptibleInfectedModel(horizon=5))


class TestLinearThreshold:
    def test_seeds_at_time_zero(self, chain_graph):
        times = _run(LinearThresholdModel(), chain_graph, 0.5, [0], seed=0)
        assert times[0] == 0.0

    def test_full_weight_always_fires(self):
        # Single parent with weight 0.99 >= almost every uniform threshold;
        # over many trials the infection rate approaches 0.99.
        graph = DiffusionGraph(2, [(0, 1)]).freeze()
        infected = sum(
            1
            for trial in range(300)
            if 1 in _run(LinearThresholdModel(), graph, 0.99, [0], seed=trial)
        )
        assert infected > 280

    def test_weights_normalised_when_overloaded(self):
        # Five parents each with weight 0.9 must be scaled to sum to 1, so
        # the child with ALL parents infected is always infected (sum = 1
        # >= any threshold < 1), and the model never crashes on overload.
        graph = DiffusionGraph(6, [(i, 5) for i in range(5)]).freeze()
        infected = sum(
            1
            for trial in range(100)
            if 5 in _run(LinearThresholdModel(), graph, 0.9, [0, 1, 2, 3, 4], seed=trial)
        )
        assert infected == 100

    def test_threshold_gates_low_weight_parents(self):
        # One parent at weight 0.3: the child fires iff its threshold
        # <= 0.3, i.e. ~30% of processes.
        graph = DiffusionGraph(2, [(0, 1)]).freeze()
        infected = sum(
            1
            for trial in range(400)
            if 1 in _run(LinearThresholdModel(), graph, 0.3, [0], seed=trial)
        )
        assert 80 < infected < 160

    def test_accumulation_across_rounds(self):
        # Chain 0 -> 1 and 2 -> 1 with weights 0.5 each: if both parents
        # eventually fire, node 1 always fires (sum = 1.0).
        graph = DiffusionGraph(3, [(0, 1), (2, 1)]).freeze()
        infected = sum(
            1
            for trial in range(100)
            if 1 in _run(LinearThresholdModel(), graph, 0.5, [0, 2], seed=trial)
        )
        assert infected == 100

    def test_missing_weight_raises(self, chain_graph):
        model = LinearThresholdModel()
        with pytest.raises(SimulationError):
            model.run(chain_graph, {}, np.array([0]), as_generator(0))

    def test_repr(self):
        assert "max_rounds" in repr(LinearThresholdModel())
