"""Argument-validation helper contracts."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("value", [0, -1, math.nan, math.inf])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    @pytest.mark.parametrize("value", [-0.001, math.nan, -math.inf])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", value)


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int("n", 1) == 1

    def test_accepts_integer_valued_float(self):
        assert check_positive_int("n", 5.0) == 5

    @pytest.mark.parametrize("value", [0, -3, 2.5])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError, match="n"):
            check_positive_int("n", value)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_bounds(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, math.nan])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction("f", 0.3) == 0.3

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.5, 2.0, math.nan])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ConfigurationError):
            check_fraction("f", value)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("v", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("v", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_in_range("v", 1.0, 1.0, 2.0, inclusive=False)
        assert check_in_range("v", 1.5, 1.0, 2.0, inclusive=False) == 1.5

    def test_message_names_bounds(self):
        with pytest.raises(ConfigurationError, match=r"\[1.0, 2.0\]"):
            check_in_range("v", 3.0, 1.0, 2.0)
