"""Observation persistence round-trips."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.simulation.cascades import Cascade, CascadeSet
from repro.simulation.io import (
    read_cascades_jsonl,
    read_statuses_csv,
    read_statuses_npz,
    write_cascades_jsonl,
    write_statuses_csv,
    write_statuses_npz,
)
from repro.simulation.statuses import StatusMatrix


class TestStatusesCsv:
    def test_round_trip(self, tiny_statuses, tmp_path):
        path = tmp_path / "s.csv"
        write_statuses_csv(tiny_statuses, path)
        assert read_statuses_csv(path) == tiny_statuses

    def test_header_comment_present(self, tiny_statuses, tmp_path):
        path = tmp_path / "s.csv"
        write_statuses_csv(tiny_statuses, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#")
        assert "beta: 6" in first

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("# nothing\n")
        with pytest.raises(DataError):
            read_statuses_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("0,1\n0,1,1\n")
        with pytest.raises(DataError):
            read_statuses_csv(path)

    def test_non_integer_cell_rejected(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("0,x\n")
        with pytest.raises(DataError):
            read_statuses_csv(path)


class TestStatusesNpz:
    def test_round_trip(self, tiny_statuses, tmp_path):
        path = tmp_path / "s.npz"
        write_statuses_npz(tiny_statuses, path)
        assert read_statuses_npz(path) == tiny_statuses

    def test_missing_array_rejected(self, tmp_path):
        path = tmp_path / "s.npz"
        np.savez(path, other=np.zeros((2, 2)))
        with pytest.raises(DataError):
            read_statuses_npz(path)


class TestCascadesJsonl:
    def _cascades(self) -> CascadeSet:
        return CascadeSet(
            5,
            [Cascade({0: 0.0, 1: 1.0}), Cascade({3: 0.0}), Cascade({})],
            horizon=4.0,
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.jsonl"
        original = self._cascades()
        write_cascades_jsonl(original, path)
        back = read_cascades_jsonl(path)
        assert back.n_nodes == 5
        assert back.horizon == 4.0
        assert back.beta == 3
        assert back.to_status_matrix() == original.to_status_matrix()
        assert dict(back[0].times) == {0: 0.0, 1: 1.0}

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(DataError):
            read_cascades_jsonl(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        write_cascades_jsonl(self._cascades(), path)
        with path.open("a") as handle:
            handle.write("{broken\n")
        with pytest.raises(DataError, match=":5"):
            read_cascades_jsonl(path)

    def test_missing_header_field_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"format": "repro.cascades"}\n')
        with pytest.raises(DataError):
            read_cascades_jsonl(path)
