"""Graph summary statistics."""

import pytest

from repro.graphs.digraph import DiffusionGraph
from repro.graphs.metrics import degree_statistics, reciprocity, summarize_graph


class TestDegreeStatistics:
    def test_chain(self, chain_graph):
        stats = degree_statistics(chain_graph)
        assert stats["out_mean"] == pytest.approx(4 / 5)
        assert stats["in_mean"] == pytest.approx(4 / 5)
        assert stats["total_max"] == 2

    def test_empty_graph(self):
        stats = degree_statistics(DiffusionGraph(0))
        assert stats["in_mean"] == 0.0
        assert stats["total_std"] == 0.0


class TestReciprocity:
    def test_no_edges(self):
        assert reciprocity(DiffusionGraph(3)) == 0.0

    def test_fully_reciprocal(self, reciprocal_pair):
        assert reciprocity(reciprocal_pair) == 1.0

    def test_one_way(self, chain_graph):
        assert reciprocity(chain_graph) == 0.0

    def test_half(self):
        graph = DiffusionGraph(3, [(0, 1), (1, 0), (1, 2), (0, 2)])
        assert reciprocity(graph) == 0.5


class TestSummarizeGraph:
    def test_star(self, star_graph):
        summary = summarize_graph(star_graph)
        assert summary.n_nodes == 6
        assert summary.n_edges == 5
        assert summary.avg_degree == pytest.approx(5 / 6)
        assert summary.max_out_degree == 5
        assert summary.max_in_degree == 1
        assert summary.density == pytest.approx(5 / 30)

    def test_as_row_keys(self, star_graph):
        row = summarize_graph(star_graph).as_row()
        assert set(row) == {
            "n",
            "m",
            "avg_degree",
            "degree_std",
            "max_in",
            "max_out",
            "reciprocity",
            "density",
        }

    def test_single_node(self):
        summary = summarize_graph(DiffusionGraph(1))
        assert summary.density == 0.0
        assert summary.avg_degree == 0.0
