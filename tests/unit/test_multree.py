"""MulTree greedy all-trees inference."""

import pytest

from repro.baselines.base import Observations
from repro.baselines.multree import MulTree
from repro.baselines.netinf import NetInf
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.cascades import Cascade, CascadeSet


def _diamond_observations(beta: int = 40) -> Observations:
    """0 -> {1, 2} -> 3 diamond; both middle nodes fire every process."""
    cascades = CascadeSet(
        4,
        [Cascade({0: 0.0, 1: 1.0, 2: 1.0, 3: 2.0}) for _ in range(beta)],
    )
    return Observations(
        n_nodes=4, statuses=cascades.to_status_matrix(), cascades=cascades
    )


class TestMulTree:
    def test_recovers_diamond(self):
        output = MulTree(n_edges=4).infer(_diamond_observations())
        assert output.graph.edge_set() == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_all_trees_takes_both_parents(self):
        # NetInf's best-tree objective saturates after one parent of node 3;
        # MulTree keeps accumulating parent mass -> it ranks BOTH (1,3) and
        # (2,3) with positive gain.
        output = MulTree(n_edges=4).infer(_diamond_observations())
        assert (1, 3) in output.graph.edge_set()
        assert (2, 3) in output.graph.edge_set()

    def test_budget_respected(self, small_observations):
        obs = Observations.from_simulation(small_observations)
        output = MulTree(n_edges=6).infer(obs)
        assert output.n_edges <= 6

    def test_requires_cascades(self, tiny_statuses):
        with pytest.raises(DataError):
            MulTree(n_edges=1).infer(Observations.from_statuses(tiny_statuses))

    def test_scores_positive_and_descendingish(self):
        output = MulTree(n_edges=4).infer(_diamond_observations())
        assert all(score > 0 for score in output.edge_scores.values())

    def test_deterministic(self, small_observations):
        obs = Observations.from_simulation(small_observations)
        a = MulTree(n_edges=10).infer(obs).graph.edge_set()
        b = MulTree(n_edges=10).infer(obs).graph.edge_set()
        assert a == b

    @pytest.mark.parametrize("bad", [0, -2])
    def test_invalid_budget(self, bad):
        with pytest.raises(ConfigurationError):
            MulTree(n_edges=bad)
