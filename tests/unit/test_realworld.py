"""Real-world network surrogates: published sizes and structure."""

from repro.graphs.generators.realworld import (
    DUNF_EDGES,
    DUNF_NODES,
    DUNF_RECIPROCITY,
    NETSCI_EDGES,
    NETSCI_NODES,
    dunf,
    netsci,
)
from repro.graphs.metrics import reciprocity, summarize_graph


class TestNetSci:
    def test_published_sizes(self):
        graph = netsci()
        assert graph.n_nodes == NETSCI_NODES == 379
        assert graph.n_edges == NETSCI_EDGES == 1602

    def test_fully_reciprocal(self):
        assert reciprocity(netsci()) == 1.0

    def test_deterministic_default_seed(self):
        assert netsci().edge_set() == netsci().edge_set()

    def test_alternate_seed_changes_topology(self):
        assert netsci(1).edge_set() != netsci(0).edge_set()
        assert netsci(1).n_edges == NETSCI_EDGES

    def test_heavy_tailed_degrees(self):
        summary = summarize_graph(netsci())
        assert summary.max_in_degree >= 3 * summary.avg_degree


class TestDunf:
    def test_published_sizes(self):
        graph = dunf()
        assert graph.n_nodes == DUNF_NODES == 750
        assert graph.n_edges == DUNF_EDGES == 2974

    def test_reciprocity_matches_constant(self):
        assert abs(reciprocity(dunf()) - DUNF_RECIPROCITY) < 0.02

    def test_deterministic_default_seed(self):
        assert dunf().edge_set() == dunf().edge_set()

    def test_has_one_way_edges(self):
        graph = dunf()
        edges = graph.edge_set()
        one_way = [e for e in edges if (e[1], e[0]) not in edges]
        assert len(one_way) > 0

    def test_no_self_loops(self):
        assert all(u != v for u, v in dunf().edges())
