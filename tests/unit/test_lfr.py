"""LFR benchmark generator behaviour (paper Table II properties)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.metrics import reciprocity, summarize_graph


class TestLFRParams:
    def test_defaults(self):
        params = LFRParams(n=100)
        assert params.avg_degree == 4.0
        assert params.tau == 2.0
        assert params.orientation == "reciprocal"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"n": 100, "avg_degree": 0},
            {"n": 100, "tau": 0},
            {"n": 100, "mixing": 0.0},
            {"n": 100, "mixing": 1.0},
            {"n": 100, "avg_degree": 100},
            {"n": 100, "orientation": "sideways"},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LFRParams(**kwargs)

    def test_min_community_resolution(self):
        assert LFRParams(n=100, avg_degree=4).resolved_min_community() == 10
        assert LFRParams(n=100, avg_degree=8).resolved_min_community() == 16
        assert LFRParams(n=100, min_community=5).resolved_min_community() == 5


class TestGeneration:
    def test_exact_average_degree(self):
        graph = lfr_benchmark_graph(LFRParams(n=200, avg_degree=4), seed=0)
        assert graph.n_nodes == 200
        assert graph.n_edges == 800

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_degree_sweep(self, k):
        graph = lfr_benchmark_graph(LFRParams(n=150, avg_degree=k), seed=1)
        assert graph.n_edges == k * 150

    def test_reciprocal_orientation(self):
        graph = lfr_benchmark_graph(LFRParams(n=100, avg_degree=4), seed=2)
        assert reciprocity(graph) == 1.0

    def test_random_orientation(self):
        graph = lfr_benchmark_graph(
            LFRParams(n=100, avg_degree=4, orientation="random"), seed=2
        )
        assert reciprocity(graph) < 0.2

    def test_dispersion_monotone_in_tau(self):
        stds = []
        for tau in (1.0, 2.0, 3.0):
            graph = lfr_benchmark_graph(LFRParams(n=300, avg_degree=4, tau=tau), seed=3)
            stds.append(summarize_graph(graph).total_degree_std)
        assert stds[0] > stds[1] > stds[2]

    def test_deterministic_for_seed(self):
        a = lfr_benchmark_graph(LFRParams(n=120, avg_degree=4), seed=9)
        b = lfr_benchmark_graph(LFRParams(n=120, avg_degree=4), seed=9)
        assert a.edge_set() == b.edge_set()

    def test_different_seeds_differ(self):
        a = lfr_benchmark_graph(LFRParams(n=120, avg_degree=4), seed=1)
        b = lfr_benchmark_graph(LFRParams(n=120, avg_degree=4), seed=2)
        assert a.edge_set() != b.edge_set()

    def test_keyword_shortcuts(self):
        graph = lfr_benchmark_graph(n=100, avg_degree=3, tau=2.5, seed=0)
        assert graph.n_edges == 300

    def test_params_and_shortcuts_conflict(self):
        with pytest.raises(ConfigurationError):
            lfr_benchmark_graph(LFRParams(n=100), n=100)

    def test_missing_everything_rejected(self):
        with pytest.raises(ConfigurationError):
            lfr_benchmark_graph()

    def test_result_is_frozen(self):
        graph = lfr_benchmark_graph(n=60, seed=0)
        assert graph.frozen

    def test_no_self_loops(self):
        graph = lfr_benchmark_graph(n=150, seed=4)
        assert all(u != v for u, v in graph.edges())

    def test_community_mixing_bounds_cross_edges(self):
        # With strong mixing bias most relations stay inside communities;
        # at least the generated graph must have substantial clustering in
        # the sense that the giant component is not a uniform random graph.
        graph = lfr_benchmark_graph(LFRParams(n=200, avg_degree=4, mixing=0.05), seed=5)
        nx_graph = graph.to_networkx().to_undirected()
        import networkx as nx

        clustering = nx.average_clustering(nx_graph)
        er_like = lfr_benchmark_graph(
            LFRParams(n=200, avg_degree=4, mixing=0.6), seed=5
        )
        er_clustering = nx.average_clustering(er_like.to_networkx().to_undirected())
        assert clustering > er_clustering
