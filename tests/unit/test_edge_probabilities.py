"""Propagation-probability estimation from statuses."""

import numpy as np
import pytest

from repro.core.edge_probabilities import (
    attributable_risk,
    estimate_edge_probabilities,
)
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.probabilities import constant_probabilities
from repro.simulation.statuses import StatusMatrix


class TestAttributableRisk:
    def test_deterministic_edge(self):
        statuses = StatusMatrix([[1, 1]] * 10 + [[0, 0]] * 10)
        assert attributable_risk(statuses, 0, 1) == pytest.approx(1.0)

    def test_independent_pair_near_zero(self):
        rng = np.random.default_rng(0)
        statuses = StatusMatrix(rng.integers(0, 2, (400, 2)))
        assert attributable_risk(statuses, 0, 1) < 0.1

    def test_negative_association_clamped_to_zero(self):
        column = np.array([0, 1] * 20)
        statuses = StatusMatrix(np.column_stack([column, 1 - column]))
        assert attributable_risk(statuses, 0, 1) == 0.0

    def test_constant_parent_gives_zero(self):
        statuses = StatusMatrix([[1, 0], [1, 1], [1, 0]])
        assert attributable_risk(statuses, 0, 1) == 0.0

    def test_saturated_background_gives_zero(self):
        statuses = StatusMatrix([[0, 1], [1, 1], [0, 1], [1, 1]])
        assert attributable_risk(statuses, 0, 1) == 0.0


def _bernoulli_seeds(probability):
    """Seed each node independently — the regime where attributable risk
    is an unbiased estimator of the edge probability."""

    def strategy(graph, rng):
        mask = rng.random(graph.n_nodes) < probability
        return np.nonzero(mask)[0]

    return strategy


class TestEstimateEdgeProbabilities:
    def test_recovers_single_parent_probability(self):
        """2-node chain with independent Bernoulli seeding:
        q1 = s + (1-s)p, q0 = s, so AR = p exactly in expectation."""
        truth = DiffusionGraph(2, [(0, 1)]).freeze()
        result = DiffusionSimulator(
            truth,
            probabilities=constant_probabilities(truth, 0.35),
            seed_strategy=_bernoulli_seeds(0.3),
            seed=1,
        ).run(beta=3000)
        estimates = estimate_edge_probabilities(truth, result.statuses)
        assert estimates[(0, 1)] == pytest.approx(0.35, abs=0.05)

    def test_star_children_recover_probability(self):
        truth = DiffusionGraph(5, [(0, i) for i in range(1, 5)]).freeze()
        result = DiffusionSimulator(
            truth,
            probabilities=constant_probabilities(truth, 0.4),
            seed_strategy=_bernoulli_seeds(0.3),
            seed=2,
        ).run(beta=3000)
        estimates = estimate_edge_probabilities(truth, result.statuses)
        for edge, value in estimates.items():
            assert value == pytest.approx(0.4, abs=0.06), edge

    def test_covers_all_edges(self, small_observations):
        truth = small_observations.graph
        estimates = estimate_edge_probabilities(truth, small_observations.statuses)
        assert set(estimates) == truth.edge_set()
        assert all(0.0 <= p <= 1.0 for p in estimates.values())

    def test_node_count_mismatch_rejected(self, tiny_statuses):
        graph = DiffusionGraph(7, [(0, 1)])
        with pytest.raises(DataError):
            estimate_edge_probabilities(graph, tiny_statuses)
