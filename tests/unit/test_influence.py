"""Influence spread estimation and maximisation."""

import pytest

from repro.analysis.influence import estimate_spread, greedy_influence_maximization
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.random_graphs import core_periphery_digraph


class TestEstimateSpread:
    def test_empty_seeds(self, chain_graph):
        assert estimate_spread(chain_graph, [], 0.5, seed=0) == 0.0

    def test_seeds_always_counted(self, chain_graph):
        spread = estimate_spread(chain_graph, [0, 2], 0.01, n_samples=50, seed=0)
        assert spread >= 2.0

    def test_deterministic_chain_probability_one_ish(self, chain_graph):
        spread = estimate_spread(chain_graph, [0], 0.99, n_samples=100, seed=1)
        assert spread > 4.5  # nearly the whole 5-node chain

    def test_probability_monotonicity(self, small_er_graph):
        low = estimate_spread(small_er_graph, [0], 0.05, n_samples=150, seed=2)
        high = estimate_spread(small_er_graph, [0], 0.6, n_samples=150, seed=2)
        assert high >= low

    def test_explicit_probability_mapping(self, chain_graph):
        probs = {edge: 0.9 for edge in chain_graph.edges()}
        spread = estimate_spread(chain_graph, [0], probs, n_samples=50, seed=3)
        assert spread > 3.0

    def test_missing_edge_probability_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            estimate_spread(chain_graph, [0], {(0, 1): 0.5}, seed=0)

    def test_uniform_probability_bounds(self, chain_graph):
        with pytest.raises(ConfigurationError):
            estimate_spread(chain_graph, [0], 1.0)


class TestGreedyInfluenceMaximization:
    def test_selects_spreader_over_sink(self):
        # Node 0 reaches everyone; node 4 reaches nobody.
        graph = DiffusionGraph(5, [(0, i) for i in range(1, 5)]).freeze()
        seeds, spread = greedy_influence_maximization(
            graph, 1, 0.5, n_samples=150, seed=0
        )
        assert seeds == [0]
        assert spread > 1.5

    def test_second_seed_avoids_redundancy(self):
        # Two disjoint stars: the greedy must take one hub from each.
        edges = [(0, i) for i in range(1, 5)] + [(5, i) for i in range(6, 10)]
        graph = DiffusionGraph(10, edges).freeze()
        seeds, _ = greedy_influence_maximization(graph, 2, 0.6, n_samples=150, seed=1)
        assert set(seeds) == {0, 5}

    def test_core_periphery_prefers_core(self):
        graph = core_periphery_digraph(40, core_fraction=0.15, seed=2)
        seeds, _ = greedy_influence_maximization(graph, 3, 0.4, n_samples=80, seed=3)
        n_core = 6
        assert sum(1 for s in seeds if s < n_core) >= 2

    def test_k_validation(self, chain_graph):
        with pytest.raises(ConfigurationError):
            greedy_influence_maximization(chain_graph, 0)
        with pytest.raises(ConfigurationError):
            greedy_influence_maximization(chain_graph, 99)

    def test_returns_k_seeds(self, small_er_graph):
        seeds, spread = greedy_influence_maximization(
            small_er_graph, 3, 0.3, n_samples=40, seed=4
        )
        assert len(seeds) == 3
        assert len(set(seeds)) == 3
        assert spread >= 3.0
