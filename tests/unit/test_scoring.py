"""Scoring criterion: counts, likelihood, penalty, Theorem-2 bound."""

import math

import numpy as np
import pytest

from repro.core.scoring import (
    delta_i,
    empty_set_score,
    family_counts,
    global_score,
    local_score,
    log_likelihood,
    penalty,
    phi_from_counts,
    size_bound,
)
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix


class TestFamilyCounts:
    def test_empty_parent_set(self, tiny_statuses):
        counts = family_counts(tiny_statuses, 0, [])
        assert counts.n_parents == 0
        assert counts.totals.tolist() == [6]
        assert counts.infected.tolist() == [3]
        assert counts.uninfected.tolist() == [3]

    def test_single_parent(self, tiny_statuses):
        counts = family_counts(tiny_statuses, 2, [0])
        # parent col 0: [1,1,0,0,1,0]; child col 2: [0,1,0,1,0,1]
        assert counts.totals.tolist() == [3, 3]  # parent=0 thrice, =1 thrice
        assert counts.infected.tolist() == [2, 1]

    def test_two_parents(self, tiny_statuses):
        counts = family_counts(tiny_statuses, 2, [0, 1])
        assert counts.n_possible == 4
        assert counts.totals.sum() == 6
        assert counts.infected.sum() == 3

    def test_phi_counts_missing_combinations(self):
        statuses = StatusMatrix([[0, 0, 1], [0, 1, 0]])  # patterns 00, 10 only
        counts = family_counts(statuses, 2, [0, 1])
        assert counts.n_observed == 2
        assert counts.phi == 2
        assert phi_from_counts(counts) == 2

    def test_child_in_parents_rejected(self, tiny_statuses):
        with pytest.raises(DataError):
            family_counts(tiny_statuses, 0, [0, 1])

    def test_duplicate_parents_rejected(self, tiny_statuses):
        with pytest.raises(DataError):
            family_counts(tiny_statuses, 2, [0, 0])

    def test_beta_recorded(self, tiny_statuses):
        assert family_counts(tiny_statuses, 0, [1]).beta == 6


class TestLogLikelihood:
    def test_always_non_positive(self, small_observations):
        statuses = small_observations.statuses
        for child in range(0, statuses.n_nodes, 5):
            parents = [p for p in (0, 1) if p != child]
            assert log_likelihood(family_counts(statuses, child, parents)) <= 1e-12

    def test_deterministic_child_scores_zero(self):
        statuses = StatusMatrix([[0, 0], [0, 0], [1, 1], [1, 1]])
        counts = family_counts(statuses, 1, [0])  # child == parent always
        assert log_likelihood(counts) == pytest.approx(0.0)

    def test_hand_computed_empty_family(self, tiny_statuses):
        counts = family_counts(tiny_statuses, 0, [])
        # N1 = N2 = 3, beta = 6: LL = 6 * log2(1/2) = -6.
        assert log_likelihood(counts) == pytest.approx(-6.0)

    def test_theorem1_monotone_in_parents(self, small_observations):
        # Theorem 1: adding any parent never decreases the likelihood.
        statuses = small_observations.statuses
        for child in (0, 3, 7):
            base: list[int] = []
            previous = log_likelihood(family_counts(statuses, child, base))
            for parent in (p for p in (1, 2, 4, 5) if p != child):
                base = base + [parent]
                current = log_likelihood(family_counts(statuses, child, base))
                assert current >= previous - 1e-9
                previous = current


class TestPenalty:
    def test_empty_family(self, tiny_statuses):
        counts = family_counts(tiny_statuses, 0, [])
        assert penalty(counts) == pytest.approx(0.5 * math.log2(7))

    def test_penalty_grows_with_parents(self, small_observations):
        statuses = small_observations.statuses
        child = 9
        values = [
            penalty(family_counts(statuses, child, parents))
            for parents in ([], [0], [0, 1], [0, 1, 2])
        ]
        assert values == sorted(values)

    def test_unobserved_combinations_contribute_zero(self):
        statuses = StatusMatrix([[0, 0, 1]] * 4)  # single pattern observed
        counts = family_counts(statuses, 2, [0, 1])
        assert penalty(counts) == pytest.approx(0.5 * math.log2(5))


class TestLocalScore:
    def test_matches_components(self, tiny_statuses):
        counts = family_counts(tiny_statuses, 2, [0])
        assert local_score(tiny_statuses, 2, [0]) == pytest.approx(
            log_likelihood(counts) - penalty(counts)
        )

    def test_empty_set_score_equation18(self, tiny_statuses):
        # g(v, {}) = N1 log2(N1/b) + N2 log2(N2/b) - 0.5 log2(b + 1)
        expected = 3 * math.log2(0.5) + 3 * math.log2(0.5) - 0.5 * math.log2(7)
        assert empty_set_score(tiny_statuses, 0) == pytest.approx(expected)

    def test_informative_parent_beats_empty(self):
        column = np.array([i % 2 for i in range(40)], dtype=np.uint8)
        statuses = StatusMatrix(np.stack([column, column], axis=1))
        assert local_score(statuses, 1, [0]) > empty_set_score(statuses, 1)

    def test_random_parent_loses_to_empty(self):
        rng = np.random.default_rng(0)
        statuses = StatusMatrix(rng.integers(0, 2, size=(60, 2)))
        assert local_score(statuses, 1, [0]) <= empty_set_score(statuses, 1) + 0.5


class TestGlobalScore:
    def test_equals_sum_of_local_scores(self, tiny_statuses):
        parent_sets = [[1], [], [0, 1]]
        expected = sum(
            local_score(tiny_statuses, child, parents)
            for child, parents in enumerate(parent_sets)
        )
        assert global_score(tiny_statuses, parent_sets) == pytest.approx(expected)

    def test_empty_topology(self, tiny_statuses):
        value = global_score(tiny_statuses, [[], [], []])
        expected = sum(empty_set_score(tiny_statuses, c) for c in range(3))
        assert value == pytest.approx(expected)

    def test_tends_output_beats_empty_topology(self, small_observations):
        from repro.core.tends import Tends

        statuses = small_observations.statuses
        result = Tends().fit(statuses)
        inferred = global_score(statuses, [list(p) for p in result.parent_sets])
        empty = global_score(statuses, [[] for _ in range(statuses.n_nodes)])
        assert inferred >= empty

    def test_wrong_length_rejected(self, tiny_statuses):
        with pytest.raises(DataError):
            global_score(tiny_statuses, [[], []])


class TestDelta:
    def test_balanced_child(self, tiny_statuses):
        # N1 = N2 = 3, beta = 6: delta = 6 log2(2) + 6 log2(2) + log2(7).
        assert delta_i(tiny_statuses, 0) == pytest.approx(12 + math.log2(7))

    def test_constant_child(self):
        statuses = StatusMatrix([[1, 0]] * 8)
        # N1 = 0 contributes nothing; N2 = 8 with log2(8/8) = 0.
        assert delta_i(statuses, 0) == pytest.approx(math.log2(9))

    def test_zero_processes_rejected(self):
        with pytest.raises(DataError):
            delta_i(StatusMatrix(np.zeros((0, 2))), 0)


class TestSizeBound:
    def test_formula(self):
        assert size_bound(0, 8.0) == pytest.approx(3.0)
        assert size_bound(4, 4.0) == pytest.approx(3.0)

    def test_pathological_small_argument(self):
        assert size_bound(0, 0.5) == 0.0

    def test_monotone_in_phi(self):
        assert size_bound(10, 5.0) > size_bound(0, 5.0)
