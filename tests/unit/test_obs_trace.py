"""Span tracing: nesting, ids, adoption, the null fast path."""

import os
import threading

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ambient_tracer,
    current_span,
    current_tracer,
)


class TestSpan:
    def test_duration_zero_while_open(self):
        span = Span(name="s", span_id=1, parent_id=None, start=10.0)
        assert span.duration == 0.0
        span.end = 12.5
        assert span.duration == 2.5

    def test_set_merges_and_chains(self):
        span = Span(name="s", span_id=1, parent_id=None, start=0.0)
        assert span.set(a=1).set(b=2) is span
        assert span.attrs == {"a": 1, "b": 2}

    def test_dict_roundtrip(self):
        span = Span(
            name="x.y", span_id=7, parent_id=3, start=1.0, end=2.0,
            attrs={"node": 4},
        )
        rebuilt = Span.from_dict(span.to_dict())
        assert rebuilt == span

    def test_from_dict_tolerates_missing_optionals(self):
        rebuilt = Span.from_dict(
            {"name": "s", "span_id": 1, "parent_id": None, "start": 0.0, "end": 1.0}
        )
        assert rebuilt.attrs == {}
        assert rebuilt.parent_id is None


class TestTracer:
    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # completion order: inner closes first
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_span_ids_unique_and_pid_salted(self):
        tracer = Tracer()
        with tracer.span("a") as a, tracer.span("b") as b:
            pass
        assert a.span_id != b.span_id
        assert a.span_id >> 24 == os.getpid()

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("s", node=3) as span:
            span.set(extra=True)
        assert tracer.finished()[0].attrs == {"node": 3, "extra": True}

    def test_timestamps_ordered(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        span = tracer.finished()[0]
        assert span.end >= span.start
        assert span.duration >= 0.0

    def test_threads_nest_independently(self):
        tracer = Tracer()
        seen = {}

        def worker(label):
            with tracer.span(label) as span:
                seen[label] = span

        with tracer.span("main"):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # New threads have a fresh context: no inherited parent.
        assert all(span.parent_id is None for span in seen.values())
        ids = [span.span_id for span in seen.values()]
        assert len(set(ids)) == len(ids)

    def test_adopt_reparents_roots_only(self):
        worker = Tracer()
        with worker.span("root"):
            with worker.span("child"):
                pass
        shipped = [s.to_dict() for s in worker.finished()]

        parent = Tracer()
        with parent.span("dispatch") as dispatch:
            pass
        parent.adopt(shipped, parent_id=dispatch.span_id)
        by_name = {s.name: s for s in parent.finished()}
        assert by_name["root"].parent_id == dispatch.span_id
        assert by_name["child"].parent_id == by_name["root"].span_id

    def test_adopt_accepts_span_objects(self):
        tracer = Tracer()
        span = Span(name="s", span_id=99, parent_id=None, start=0.0, end=1.0)
        tracer.adopt([span])
        assert tracer.finished() == (span,)

    def test_span_closed_even_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.finished()[0].end > 0.0
        assert current_span() is None


class TestNullTracer:
    def test_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.finished() == ()

    def test_span_is_shared_noop_context(self):
        a = NULL_TRACER.span("x", attr=1)
        b = NULL_TRACER.span("y")
        assert a is b
        with a as span:
            assert span.set(z=2) is span
        assert NULL_TRACER.finished() == ()

    def test_adopt_discards(self):
        tracer = NullTracer()
        tracer.adopt([{"name": "s", "span_id": 1, "parent_id": None,
                       "start": 0.0, "end": 1.0}])
        assert tracer.finished() == ()


class TestAmbient:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_install_and_reset(self):
        tracer = Tracer()
        with ambient_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_current_span_tracks_nesting(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
