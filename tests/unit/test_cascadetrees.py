"""Candidate-edge table shared by NetInf and MulTree."""

import numpy as np
import pytest

from repro.baselines._cascadetrees import build_candidate_table
from repro.exceptions import ConfigurationError
from repro.simulation.cascades import Cascade, CascadeSet


def _cascades() -> CascadeSet:
    return CascadeSet(
        4,
        [
            Cascade({0: 0.0, 1: 1.0, 2: 2.0}),
            Cascade({3: 0.0, 2: 1.0}),
        ],
    )


class TestBuildCandidateTable:
    def test_candidate_pairs(self):
        table = build_candidate_table(_cascades(), 0.3)
        edges = {tuple(e) for e in table.edges.tolist()}
        assert edges == {(0, 1), (0, 2), (1, 2), (3, 2)}

    def test_geometric_weights(self):
        table = build_candidate_table(_cascades(), 0.3)
        by_edge = {
            tuple(table.edges[i]): table.support(i) for i in range(table.n_candidates)
        }
        # (0, 1): gap 1 -> p
        _, probs = by_edge[(0, 1)]
        assert probs[0] == pytest.approx(0.3)
        # (0, 2): gap 2 -> p * (1 - p)
        _, probs = by_edge[(0, 2)]
        assert probs[0] == pytest.approx(0.3 * 0.7)

    def test_support_cascade_ids(self):
        table = build_candidate_table(_cascades(), 0.3)
        by_edge = {
            tuple(table.edges[i]): table.support(i) for i in range(table.n_candidates)
        }
        cascade_ids, _ = by_edge[(3, 2)]
        assert cascade_ids.tolist() == [1]

    def test_offsets_partition_entries(self):
        table = build_candidate_table(_cascades(), 0.3)
        assert table.offsets[0] == 0
        assert table.offsets[-1] == table.cascade_ids.shape[0]
        assert np.all(np.diff(table.offsets) >= 1)

    def test_empty_cascades(self):
        table = build_candidate_table(CascadeSet(3, []), 0.3)
        assert table.n_candidates == 0

    def test_singleton_cascades_skipped(self):
        table = build_candidate_table(CascadeSet(3, [Cascade({0: 0.0})]), 0.3)
        assert table.n_candidates == 0

    def test_simultaneous_infections_not_candidates(self):
        cascades = CascadeSet(3, [Cascade({0: 0.0, 1: 0.0, 2: 1.0})])
        table = build_candidate_table(cascades, 0.3)
        edges = {tuple(e) for e in table.edges.tolist()}
        assert (0, 1) not in edges and (1, 0) not in edges
        assert edges == {(0, 2), (1, 2)}

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            build_candidate_table(_cascades(), 0.0)

    def test_edge_appearing_in_multiple_cascades_grouped(self):
        cascades = CascadeSet(
            2,
            [Cascade({0: 0.0, 1: 1.0}), Cascade({0: 0.0, 1: 2.0})],
        )
        table = build_candidate_table(cascades, 0.5)
        assert table.n_candidates == 1
        cascade_ids, probs = table.support(0)
        assert cascade_ids.tolist() == [0, 1]
        assert probs.tolist() == pytest.approx([0.5, 0.25])
