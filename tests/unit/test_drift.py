"""Unit tests for the per-pair drift detector (:mod:`repro.core.drift`).

Three families of guarantees:

* mechanics — config validation, window gating, pair eligibility,
  report shape and ordering;
* power — an injected dependence change between windows is flagged, by
  both statistics, and the flagged pairs point at the changed nodes;
* false-positive control — on stationary streams the corrected detector
  flags (anything at all) in at most ~``alpha`` of independent trials.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift import (
    CORRECTIONS,
    STATISTICS,
    DriftConfig,
    DriftReport,
    detect_drift,
)
from repro.core.stats import SufficientStats
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.statuses import StatusMatrix


def _iid_stats(beta, n, seed, p=0.4):
    rng = np.random.default_rng(seed)
    data = (rng.random((beta, n)) < p).astype(np.uint8)
    return SufficientStats.from_statuses(StatusMatrix(data))


def _coupled_stats(beta, n, seed, rho):
    """Node 1 copies node 0 with probability ``rho``; others i.i.d."""
    rng = np.random.default_rng(seed)
    data = (rng.random((beta, n)) < 0.4).astype(np.uint8)
    copy = rng.random(beta) < rho
    data[copy, 1] = data[copy, 0]
    return SufficientStats.from_statuses(StatusMatrix(data))


class TestConfig:
    def test_defaults_valid(self):
        config = DriftConfig()
        assert config.correction in CORRECTIONS
        assert config.statistic in STATISTICS

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"correction": "holm"},
            {"statistic": "ttest"},
            {"min_window_beta": 1},
            {"min_pair_obs": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DriftConfig(**kwargs)


class TestGating:
    def test_small_windows_yield_empty_report(self):
        ref = _iid_stats(10, 8, seed=1)
        rec = _iid_stats(10, 8, seed=2)
        report = detect_drift(ref, rec, DriftConfig(min_window_beta=25))
        assert report.n_pairs_tested == 0
        assert not report.drifted
        assert "skipped" in report.summary()

    def test_mismatched_windows_rejected(self):
        with pytest.raises(DataError):
            detect_drift(_iid_stats(40, 8, seed=1), _iid_stats(40, 9, seed=2))

    def test_non_stats_inputs_rejected(self):
        with pytest.raises(DataError):
            detect_drift(object(), _iid_stats(40, 8, seed=1))

    def test_min_pair_obs_excludes_sparse_pairs(self):
        rng = np.random.default_rng(3)
        data = (rng.random((60, 6)) < 0.4).astype(np.uint8)
        # Node 5 almost never observed in the recent window.
        mask = np.ones_like(data, dtype=bool)
        mask[5:, 5] = False
        ref = SufficientStats.from_statuses(StatusMatrix(data))
        rec = SufficientStats.from_statuses(StatusMatrix(data, mask))
        full = detect_drift(ref, rec, DriftConfig(min_pair_obs=1))
        gated = detect_drift(ref, rec, DriftConfig(min_pair_obs=10))
        assert gated.n_pairs_tested < full.n_pairs_tested


class TestPower:
    @pytest.mark.parametrize("statistic", STATISTICS)
    def test_dependence_change_is_flagged(self, statistic):
        ref = _coupled_stats(400, 8, seed=10, rho=0.0)
        rec = _coupled_stats(400, 8, seed=11, rho=0.9)
        report = detect_drift(
            ref, rec, DriftConfig(alpha=0.01, statistic=statistic)
        )
        assert report.drifted
        assert (0, 1) in {(p.i, p.j) for p in report.drifted_pairs}
        assert 0 in report.affected_nodes and 1 in report.affected_nodes

    def test_pairs_sorted_most_significant_first(self):
        ref = _coupled_stats(400, 8, seed=12, rho=0.0)
        rec = _coupled_stats(400, 8, seed=13, rho=0.9)
        report = detect_drift(ref, rec)
        p_values = [pair.p_value for pair in report.drifted_pairs]
        assert p_values == sorted(p_values)

    def test_bonferroni_is_no_more_permissive_than_bh(self):
        ref = _coupled_stats(300, 8, seed=14, rho=0.0)
        rec = _coupled_stats(300, 8, seed=15, rho=0.5)
        bh = detect_drift(ref, rec, DriftConfig(correction="bh"))
        bonf = detect_drift(ref, rec, DriftConfig(correction="bonferroni"))
        assert bonf.n_flagged <= bh.n_flagged

    def test_identical_windows_never_flag(self):
        stats = _iid_stats(200, 8, seed=16)
        report = detect_drift(stats, stats, DriftConfig(correction="none"))
        assert not report.drifted


class TestFalsePositiveRate:
    @pytest.mark.parametrize("statistic", STATISTICS)
    def test_stationary_fpr_at_most_alpha(self, statistic):
        """On i.i.d. streams, a corrected check flags anything at all in
        at most ~alpha of trials.  60 deterministic trials at alpha=0.05
        expect 3 detections; 7 bounds the binomial 0.999 quantile, so a
        pass means the empirical FPR is statistically compatible with
        the alpha guarantee (anticonservative detectors blow well past)."""
        alpha, trials = 0.05, 60
        detections = 0
        for trial in range(trials):
            ref = _iid_stats(150, 10, seed=1000 + 2 * trial)
            rec = _iid_stats(150, 10, seed=1001 + 2 * trial)
            report = detect_drift(
                ref, rec, DriftConfig(alpha=alpha, statistic=statistic)
            )
            detections += bool(report.drifted)
        assert detections <= 7

    def test_stationary_single_run_split_is_quiet(self):
        rng = np.random.default_rng(77)
        data = (rng.random((300, 12)) < 0.45).astype(np.uint8)
        full = StatusMatrix(data)
        ref = SufficientStats.from_statuses(full.subset(range(0, 200)))
        rec = SufficientStats.from_statuses(full.subset(range(200, 300)))
        assert not detect_drift(ref, rec).drifted


class TestReport:
    def test_report_records_window_sizes_and_knobs(self):
        ref = _iid_stats(100, 6, seed=20)
        rec = _iid_stats(50, 6, seed=21)
        config = DriftConfig(alpha=0.02, correction="bonferroni")
        report = detect_drift(ref, rec, config)
        assert isinstance(report, DriftReport)
        assert report.reference_beta == 100
        assert report.recent_beta == 50
        assert report.alpha == 0.02
        assert report.correction == "bonferroni"
        assert report.n_pairs_tested == 15

    def test_summary_mentions_flag_counts(self):
        ref = _coupled_stats(400, 8, seed=22, rho=0.0)
        rec = _coupled_stats(400, 8, seed=23, rho=0.9)
        report = detect_drift(ref, rec)
        text = report.summary()
        assert "drift" in text
        assert str(report.n_flagged) in text
