"""NetRate exponential-model EM solver."""

import numpy as np
import pytest

from repro.baselines.base import Observations
from repro.baselines.netrate import NetRate
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.cascades import Cascade, CascadeSet


def _chain_observations(beta: int = 40) -> Observations:
    cascades = CascadeSet(
        3, [Cascade({0: 0.0, 1: 1.0, 2: 2.0}) for _ in range(beta)], horizon=4.0
    )
    return Observations(
        n_nodes=3, statuses=cascades.to_status_matrix(), cascades=cascades
    )


def _mixed_observations() -> Observations:
    """Node 1 follows node 0 quickly when 0 is seeded; node 2 unrelated."""
    cascades = []
    for i in range(30):
        if i % 2 == 0:
            cascades.append(Cascade({0: 0.0, 1: 1.0}))
        else:
            cascades.append(Cascade({2: 0.0}))
    cs = CascadeSet(3, cascades, horizon=5.0)
    return Observations(n_nodes=3, statuses=cs.to_status_matrix(), cascades=cs)


class TestRateMatrix:
    def test_shape_and_nonnegativity(self):
        rates = NetRate().rate_matrix(_chain_observations())
        assert rates.shape == (3, 3)
        assert (rates >= 0).all()

    def test_diagonal_zero(self):
        rates = NetRate().rate_matrix(_chain_observations())
        assert np.allclose(np.diag(rates), 0.0)

    def test_true_edges_get_highest_rates(self):
        rates = NetRate().rate_matrix(_chain_observations())
        assert rates[0, 1] > rates[2, 1]
        assert rates[1, 2] > rates[0, 2]  # gap 1 beats gap 2

    def test_no_rate_for_never_preceding_pairs(self):
        rates = NetRate().rate_matrix(_chain_observations())
        assert rates[2, 0] == 0.0  # 2 never precedes 0

    def test_unrelated_node_gets_low_rate(self):
        rates = NetRate().rate_matrix(_mixed_observations())
        assert rates[0, 1] > 0.1
        assert rates[0, 2] == 0.0  # 2 is infected only as a seed

    def test_requires_cascades(self, tiny_statuses):
        with pytest.raises(DataError):
            NetRate().rate_matrix(Observations.from_statuses(tiny_statuses))


class TestInfer:
    def test_threshold_controls_edges(self):
        low = NetRate(rate_threshold=0.0).infer(_chain_observations())
        high = NetRate(rate_threshold=1e9).infer(_chain_observations())
        assert low.n_edges >= high.n_edges
        assert high.n_edges == 0

    def test_scores_cover_all_positive_rates(self):
        output = NetRate().infer(_chain_observations())
        assert all(score > 0 for score in output.edge_scores.values())
        assert (0, 1) in output.edge_scores

    def test_converges_on_simulated_data(self, small_observations):
        obs = Observations.from_simulation(small_observations)
        output = NetRate(max_iterations=30).infer(obs)
        assert output.graph.n_nodes == obs.n_nodes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"tolerance": 0.0},
            {"rate_threshold": -0.1},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            NetRate(**kwargs)
