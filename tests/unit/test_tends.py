"""The TENDS estimator end-to-end on small controlled inputs."""

import numpy as np
import pytest

from repro.core.config import TendsConfig
from repro.core.tends import Tends
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix


def _two_block_statuses(beta: int = 120, seed: int = 0) -> StatusMatrix:
    """Nodes {0,1} strongly coupled, {2,3} strongly coupled, blocks independent."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, beta)
    b = np.where(rng.random(beta) < 0.08, 1 - a, a)
    c = rng.integers(0, 2, beta)
    d = np.where(rng.random(beta) < 0.08, 1 - c, c)
    return StatusMatrix(np.column_stack([a, b, c, d]))


class TestFit:
    def test_recovers_block_structure(self):
        result = Tends().fit(_two_block_statuses())
        edges = result.graph.edge_set()
        assert (0, 1) in edges and (1, 0) in edges
        assert (2, 3) in edges and (3, 2) in edges
        cross = {(u, v) for u, v in edges if (u < 2) != (v < 2)}
        assert not cross

    def test_accepts_raw_arrays(self):
        raw = _two_block_statuses().values
        result = Tends().fit(raw)
        assert result.graph.n_nodes == 4

    def test_requires_two_processes(self):
        with pytest.raises(DataError):
            Tends().fit(StatusMatrix(np.zeros((1, 3), dtype=int)))

    def test_result_fields(self):
        # Pin the backend: this test checks the serial worker labels, so
        # it must not pick up a REPRO_EXECUTOR environment fallback.
        result = Tends(executor="serial").fit(_two_block_statuses())
        assert result.mi_matrix.shape == (4, 4)
        assert result.threshold >= 0.0
        assert result.clustering is not None
        assert len(result.parent_sets) == 4
        assert len(result.diagnostics) == 4
        # Pin the full key namespace: bare stage names plus one
        # search/<worker> entry per worker, and nothing else.
        assert set(result.stage_seconds) == {
            "imi", "threshold", "search", "search/serial",
        }
        assert set(result.stage_times) == {"imi", "threshold", "search"}
        assert result.worker_seconds == {
            "serial": result.stage_seconds["search/serial"]
        }
        assert [w.worker for w in result.worker_stats] == ["serial"]
        assert result.worker_stats[0].n_items == 4
        assert result.telemetry is None  # tracing is opt-in

    def test_parent_sets_match_graph(self):
        result = Tends().fit(_two_block_statuses())
        for child, parents in enumerate(result.parent_sets):
            for parent in parents:
                assert result.graph.has_edge(parent, child)
        assert sum(len(p) for p in result.parent_sets) == result.n_edges

    def test_deterministic(self):
        statuses = _two_block_statuses()
        a = Tends().fit(statuses)
        b = Tends().fit(statuses)
        assert a.graph.edge_set() == b.graph.edge_set()
        assert a.threshold == b.threshold


class TestConfigEffects:
    def test_explicit_threshold_skips_clustering(self):
        result = Tends(threshold=0.5).fit(_two_block_statuses())
        assert result.clustering is None
        assert result.threshold == 0.5

    def test_huge_threshold_prunes_everything(self):
        result = Tends(threshold=10.0).fit(_two_block_statuses())
        assert result.n_edges == 0
        assert result.candidate_counts().tolist() == [0, 0, 0, 0]

    def test_threshold_scale_applied(self):
        statuses = _two_block_statuses()
        base = Tends().fit(statuses)
        scaled = Tends(threshold_scale=2.0).fit(statuses)
        assert scaled.threshold == pytest.approx(2.0 * base.threshold)

    def test_traditional_mi_mode(self):
        result = Tends(mi_kind="traditional").fit(_two_block_statuses())
        assert result.mi_matrix.min() >= 0.0

    def test_max_candidates_cap(self):
        result = Tends(max_candidates=1).fit(_two_block_statuses())
        assert result.candidate_counts().max() <= 1

    def test_max_candidates_tie_breaking_is_stable(self):
        # A tie-heavy MI row: many candidates share the same MI value, so
        # the cap must keep the lowest-indexed ones regardless of the
        # sort algorithm numpy picks (unstable argsort + [::-1] used to
        # reverse tie order and could differ across numpy versions).
        n = 12
        mi = np.zeros((n, n))
        mi[0, 1:] = 0.5           # ten-way tie ...
        mi[0, 7] = 0.9            # ... plus one clear winner
        estimator = Tends(max_candidates=4)
        capped = estimator._candidates_for(mi, node=0, threshold=0.1)
        assert capped == [1, 2, 3, 7]

    def test_max_candidates_all_tied_keeps_lowest_indices(self):
        n = 9
        mi = np.full((n, n), 0.25)
        np.fill_diagonal(mi, 0.0)
        estimator = Tends(max_candidates=3)
        for node in range(n):
            capped = estimator._candidates_for(mi, node=node, threshold=0.1)
            expected = [i for i in range(n) if i != node][:3]
            assert capped == expected

    def test_config_object_and_overrides(self):
        config = TendsConfig(threshold_scale=0.5)
        estimator = Tends(config, min_improvement=0.1)
        assert estimator.config.threshold_scale == 0.5
        assert estimator.config.min_improvement == 0.1

    def test_total_evaluations_positive(self):
        result = Tends().fit(_two_block_statuses())
        assert result.total_evaluations() > 0


class TestTelemetry:
    """trace=True attaches spans/metrics without perturbing inference."""

    def test_traced_fit_matches_untraced(self):
        statuses = _two_block_statuses()
        plain = Tends(executor="serial").fit(statuses)
        traced = Tends(executor="serial", trace=True).fit(statuses)
        assert traced.parent_sets == plain.parent_sets
        assert traced.threshold == plain.threshold
        assert np.array_equal(traced.mi_matrix, plain.mi_matrix)

    def test_telemetry_contents(self):
        result = Tends(executor="serial", trace=True).fit(_two_block_statuses())
        telemetry = result.telemetry
        assert telemetry is not None
        names = set(telemetry.span_names())
        assert {"tends.fit", "tends.imi", "tends.threshold",
                "tends.search", "search.node"} <= names
        counters = telemetry.metrics["counters"]
        assert counters["tends_imi_pairs_total"] == 6  # C(4, 2)
        assert (counters["tends_candidate_pairs_pruned_total"]
                + counters["tends_candidate_pairs_kept_total"]) == 12
        assert counters["tends_score_evaluations_total"] == (
            result.total_evaluations()
        )
        assert telemetry.metrics["gauges"]["tends_threshold_tau"] == (
            result.threshold
        )
        iters = telemetry.metrics["histograms"]["tends_greedy_iterations"]
        assert iters["count"] == 4  # one observation per node

    def test_threshold_span_records_tau(self):
        result = Tends(executor="serial", threshold=0.5, trace=True).fit(
            _two_block_statuses()
        )
        span = next(
            s for s in result.telemetry.spans if s.name == "tends.threshold"
        )
        assert span.attrs["tau"] == 0.5
