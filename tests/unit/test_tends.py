"""The TENDS estimator end-to-end on small controlled inputs."""

import numpy as np
import pytest

from repro.core.config import TendsConfig
from repro.core.tends import Tends
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix


def _two_block_statuses(beta: int = 120, seed: int = 0) -> StatusMatrix:
    """Nodes {0,1} strongly coupled, {2,3} strongly coupled, blocks independent."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, beta)
    b = np.where(rng.random(beta) < 0.08, 1 - a, a)
    c = rng.integers(0, 2, beta)
    d = np.where(rng.random(beta) < 0.08, 1 - c, c)
    return StatusMatrix(np.column_stack([a, b, c, d]))


class TestFit:
    def test_recovers_block_structure(self):
        result = Tends().fit(_two_block_statuses())
        edges = result.graph.edge_set()
        assert (0, 1) in edges and (1, 0) in edges
        assert (2, 3) in edges and (3, 2) in edges
        cross = {(u, v) for u, v in edges if (u < 2) != (v < 2)}
        assert not cross

    def test_accepts_raw_arrays(self):
        raw = _two_block_statuses().values
        result = Tends().fit(raw)
        assert result.graph.n_nodes == 4

    def test_requires_two_processes(self):
        with pytest.raises(DataError):
            Tends().fit(StatusMatrix(np.zeros((1, 3), dtype=int)))

    def test_result_fields(self):
        result = Tends().fit(_two_block_statuses())
        assert result.mi_matrix.shape == (4, 4)
        assert result.threshold >= 0.0
        assert result.clustering is not None
        assert len(result.parent_sets) == 4
        assert len(result.diagnostics) == 4
        assert set(result.stage_seconds) == {"imi", "threshold", "search"}

    def test_parent_sets_match_graph(self):
        result = Tends().fit(_two_block_statuses())
        for child, parents in enumerate(result.parent_sets):
            for parent in parents:
                assert result.graph.has_edge(parent, child)
        assert sum(len(p) for p in result.parent_sets) == result.n_edges

    def test_deterministic(self):
        statuses = _two_block_statuses()
        a = Tends().fit(statuses)
        b = Tends().fit(statuses)
        assert a.graph.edge_set() == b.graph.edge_set()
        assert a.threshold == b.threshold


class TestConfigEffects:
    def test_explicit_threshold_skips_clustering(self):
        result = Tends(threshold=0.5).fit(_two_block_statuses())
        assert result.clustering is None
        assert result.threshold == 0.5

    def test_huge_threshold_prunes_everything(self):
        result = Tends(threshold=10.0).fit(_two_block_statuses())
        assert result.n_edges == 0
        assert result.candidate_counts().tolist() == [0, 0, 0, 0]

    def test_threshold_scale_applied(self):
        statuses = _two_block_statuses()
        base = Tends().fit(statuses)
        scaled = Tends(threshold_scale=2.0).fit(statuses)
        assert scaled.threshold == pytest.approx(2.0 * base.threshold)

    def test_traditional_mi_mode(self):
        result = Tends(mi_kind="traditional").fit(_two_block_statuses())
        assert result.mi_matrix.min() >= 0.0

    def test_max_candidates_cap(self):
        result = Tends(max_candidates=1).fit(_two_block_statuses())
        assert result.candidate_counts().max() <= 1

    def test_config_object_and_overrides(self):
        config = TendsConfig(threshold_scale=0.5)
        estimator = Tends(config, min_improvement=0.1)
        assert estimator.config.threshold_scale == 0.5
        assert estimator.config.min_improvement == 0.1

    def test_total_evaluations_positive(self):
        result = Tends().fit(_two_block_statuses())
        assert result.total_evaluations() > 0
