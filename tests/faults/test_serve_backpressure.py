"""Backpressure behaviour under a producer ~10× faster than absorb.

Each test slows the absorb path artificially (every ``partial_fit``
sleeps) while a producer thread submits as fast as it can, then checks
the configured policy's contract:

* ``block``  — lossless: every acknowledged batch is eventually
  absorbed; the producer measurably stalls; pending weight never
  exceeds the queue capacity.
* ``reject`` — the queue never overfills; refused submissions raise and
  are durably quarantined so replay cannot resurrect them.
* ``shed``   — the newest data wins; dropped batches are durably
  quarantined; the served model equals the reference over exactly the
  surviving (non-quarantined) sequence — including after a reopen.
"""

from __future__ import annotations

import time

import pytest

from repro.core.tends import Tends
from repro.exceptions import ServiceError
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.serve import BatchPolicy, IngestService, QuarantineStore
from repro.simulation.engine import DiffusionSimulator

WAIT = 60.0

#: Seconds each absorb is slowed by; the producer submits every ~0 s,
#: making it comfortably >10× faster than the absorber.
ABSORB_DELAY = 0.05

CAPACITY = 30  # cascades; batches weigh 10, so 3 fit


@pytest.fixture(scope="module")
def corpus():
    truth = erdos_renyi_digraph(10, 0.2, seed=13)
    statuses = DiffusionSimulator(truth, seed=13).run(beta=240).statuses
    base = statuses.subset(range(120))
    batches = [
        statuses.subset(range(120 + i * 10, 120 + (i + 1) * 10))
        for i in range(12)
    ]
    estimator = Tends()
    estimator.fit(base)
    return estimator.model, base, batches


def slow_down(service):
    """Make every absorb take :data:`ABSORB_DELAY` seconds."""
    original = service._estimator.partial_fit

    def slowed(batch):
        time.sleep(ABSORB_DELAY)
        return original(batch)

    service.estimator_delay_original = original
    service._estimator.partial_fit = slowed


def make_service(tmp_path, bootstrap, policy):
    service = IngestService(
        tmp_path / "svc",
        bootstrap,
        batch_policy=BatchPolicy(max_cascades=10, max_delay_seconds=0.01),
        queue_capacity=CAPACITY,
        backpressure=policy,
    )
    slow_down(service)
    return service


def reference_fingerprint(base, batches_by_seq, absorbed_seqs):
    estimator = Tends()
    estimator.fit(base)
    for seq in sorted(absorbed_seqs):
        estimator.partial_fit(batches_by_seq[seq])
    return estimator.model.fingerprint()


def wait_until(predicate, timeout=WAIT, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


class TestBlockPolicy:
    def test_lossless_and_bounded_under_overload(self, tmp_path, corpus):
        bootstrap, base, batches = corpus
        max_pending = []
        with make_service(tmp_path, bootstrap, "block") as svc:
            started = time.monotonic()
            for batch in batches:
                svc.submit(batch, timeout=WAIT)
                max_pending.append(svc._queue.weight)
            produce_seconds = time.monotonic() - started
            wait_until(lambda: svc.stats().absorbed_seq >= len(batches),
                       message="queue drained")
            stats = svc.stats()
        # The queue never overfilled, nothing was lost, and the producer
        # actually stalled (absorbing 12 slowed batches takes >= 10 of
        # them longer than the free-running producer needs).
        assert max(max_pending) <= CAPACITY
        assert stats.quarantined == 0
        assert produce_seconds > ABSORB_DELAY * 3
        assert svc._queue.blocked_total > 0
        seqs = {i + 1: b for i, b in enumerate(batches)}
        assert svc.model.fingerprint() == reference_fingerprint(
            base, seqs, seqs.keys()
        )


class TestRejectPolicy:
    def test_overflow_is_refused_and_durably_quarantined(self, tmp_path, corpus):
        bootstrap, base, batches = corpus
        accepted, refused = [], []
        with make_service(tmp_path, bootstrap, "reject") as svc:
            for i, batch in enumerate(batches):
                try:
                    accepted.append(svc.submit(batch))
                except ServiceError:
                    refused.append(i + 1)
                assert svc._queue.weight <= CAPACITY
            wait_until(
                lambda: svc.stats().absorbed_seq >= max(accepted),
                message="accepted batches absorbed",
            )
            stats = svc.stats()
            fingerprint = svc.model.fingerprint()
        assert refused, "producer at 10x never hit the reject policy"
        assert stats.rejected == len(refused)
        # Refused sequences are quarantined so replay skips them...
        quarantined = set(
            QuarantineStore.load(tmp_path / "svc" / "quarantine.jsonl")
        )
        assert set(refused) == quarantined
        # ...and the served model covers exactly the accepted ones.
        seqs = {i + 1: b for i, b in enumerate(batches)}
        assert fingerprint == reference_fingerprint(base, seqs, accepted)

    def test_replay_after_reopen_skips_rejected(self, tmp_path, corpus):
        bootstrap, base, batches = corpus
        with make_service(tmp_path, bootstrap, "reject") as svc:
            accepted = []
            for batch in batches:
                try:
                    accepted.append(svc.submit(batch))
                except ServiceError:
                    pass
            wait_until(lambda: svc.stats().absorbed_seq >= max(accepted),
                       message="accepted batches absorbed")
            fingerprint = svc.model.fingerprint()
        reopened = IngestService(tmp_path / "svc")
        try:
            assert reopened.model.fingerprint() == fingerprint
        finally:
            reopened.close()


class TestShedPolicy:
    def test_oldest_pending_are_shed_newest_win(self, tmp_path, corpus):
        bootstrap, base, batches = corpus
        with make_service(tmp_path, bootstrap, "shed") as svc:
            for batch in batches:
                svc.submit(batch)
                assert svc._queue.weight <= CAPACITY
            # The newest batch is submitted last and can no longer be
            # shed once the producer stops, so it marks full drain.
            wait_until(
                lambda: svc.stats().absorbed_seq >= len(batches),
                message="queue drained",
            )
            stats = svc.stats()
            fingerprint = svc.model.fingerprint()
        assert stats.shed > 0, "producer at 10x never tripped shedding"
        quarantined = set(
            QuarantineStore.load(tmp_path / "svc" / "quarantine.jsonl")
        )
        assert len(quarantined) == stats.shed
        # The newest batch always survives shedding.
        assert len(batches) not in quarantined
        survivors = set(range(1, len(batches) + 1)) - quarantined
        seqs = {i + 1: b for i, b in enumerate(batches)}
        assert fingerprint == reference_fingerprint(base, seqs, survivors)

        # Recovery agrees: shed sequences stay dead after a reopen.
        reopened = IngestService(tmp_path / "svc")
        try:
            assert reopened.model.fingerprint() == fingerprint
        finally:
            reopened.close()
