"""Picklable fault-injection chunk functions for the executor tests.

Every function here is module-level (the process backend ships chunk
functions by reference) and coordinates "fail once, then succeed"
behaviour through sentinel files in a directory passed via the context —
worker processes share no memory with the test, but they do share the
filesystem.

The context is a plain dict::

    {"dir": <sentinel directory>, "main_pid": <test process pid>}

Crash helpers only kill *worker* processes (``os.getpid() != main_pid``),
so the thread/serial fallbacks — which run in the test process — compute
normally instead of killing the test runner.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Sequence

#: Bounded sleep for hang simulations: long enough to trip sub-second
#: chunk timeouts, short enough that abandoned (non-preemptible) threads
#: drain before the interpreter exits.
HANG_SECONDS = 1.0


def expected(items: Sequence[int]) -> list[int]:
    """The ground truth every fault function converges to."""
    return [item * 2 for item in items]


def _sentinel(context: dict, kind: str, items: Sequence[int]) -> Path:
    return Path(context["dir"]) / f"{kind}-{items[0]}"


def echo_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """The no-fault control."""
    return expected(items)


def raise_once_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Transient failure: raise on the first attempt, succeed after."""
    sentinel = _sentinel(context, "raise", items)
    if not sentinel.exists():
        sentinel.touch()
        raise RuntimeError(f"transient failure on chunk starting at {items[0]}")
    return expected(items)


def always_raise_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Deterministic failure: every attempt raises (retry exhaustion)."""
    raise ValueError(f"permanent failure on chunk starting at {items[0]}")


def crash_once_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Kill the worker process once for the chunk containing item 0."""
    if 0 in items and os.getpid() != context["main_pid"]:
        sentinel = _sentinel(context, "crash", items)
        if not sentinel.exists():
            sentinel.touch()
            os._exit(13)
    return expected(items)


def crash_always_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Kill every worker process that touches any chunk — the process
    backend can never finish; thread/serial fallback computes normally."""
    if os.getpid() != context["main_pid"]:
        os._exit(13)
    return expected(items)


def hang_once_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Hang (bounded) on the first attempt of the chunk containing item 0."""
    sentinel = _sentinel(context, "hang", items)
    if 0 in items and not sentinel.exists():
        sentinel.touch()
        time.sleep(HANG_SECONDS)
    return expected(items)


def hang_always_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Every attempt of every chunk hangs (bounded) — timeout exhaustion."""
    time.sleep(HANG_SECONDS)
    return expected(items)


def slow_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Slow but healthy — used by the interrupt test to guarantee the
    map is still in flight when the signal arrives."""
    time.sleep(0.2)
    return expected(items)
