"""Picklable fault-injection chunk functions for the executor tests.

Every function here is module-level (the process backend ships chunk
functions by reference) and coordinates "fail once, then succeed"
behaviour through sentinel files in a directory passed via the context —
worker processes share no memory with the test, but they do share the
filesystem.

The context is a plain dict::

    {"dir": <sentinel directory>, "main_pid": <test process pid>}

Crash helpers only kill *worker* processes (``os.getpid() != main_pid``),
so the thread/serial fallbacks — which run in the test process — compute
normally instead of killing the test runner.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Sequence

#: Upper bound on hang simulations: long enough to trip sub-second chunk
#: timeouts, short enough that abandoned (non-preemptible) threads drain
#: before the interpreter exits even if nobody releases them.
HANG_SECONDS = 1.0

#: Poll interval for the filesystem-event waits below.
_POLL_SECONDS = 0.02


def expected(items: Sequence[int]) -> list[int]:
    """The ground truth every fault function converges to."""
    return [item * 2 for item in items]


def _sentinel(context: dict, kind: str, items: Sequence[int]) -> Path:
    return Path(context["dir"]) / f"{kind}-{items[0]}"


def release_workers(context: dict) -> None:
    """End every in-flight hang immediately (see :func:`_hang`).

    Tests call this once the executor has observed the timeout — the
    abandoned workers wake on the next poll instead of sleeping out the
    full :data:`HANG_SECONDS`, so the suite's wall-clock tracks the
    chunk timeouts under test, not the simulation's worst case.
    """
    (Path(context["dir"]) / "release").touch()


def _hang(context: dict) -> None:
    """Event-bounded hang: block until :func:`release_workers` touches
    the release sentinel, or :data:`HANG_SECONDS` elapses.

    The wait is a filesystem event rather than a fixed sleep because
    worker processes share no memory with the test — but both bounds
    hold: the hang always outlasts sub-second chunk timeouts (nothing
    releases it before the executor gives up) and never outlasts the
    flake budget.
    """
    release = Path(context["dir"]) / "release"
    deadline = time.monotonic() + HANG_SECONDS
    while time.monotonic() < deadline and not release.exists():
        time.sleep(_POLL_SECONDS)


def mark_chunk_started(context: dict, items: Sequence[int]) -> None:
    """Record that a chunk entered its function body (see
    :func:`wait_for_chunk_start`)."""
    (Path(context["dir"]) / f"started-{items[0]}").touch()


def wait_for_chunk_start(directory: str, timeout: float = 10.0) -> bool:
    """Block until any chunk function has signalled it is running.

    The interrupt tests use this instead of a fixed pre-signal sleep:
    the signal is guaranteed to land while the map is in flight, however
    slowly the pool spins up on a loaded CI runner.  Returns ``False``
    on timeout so callers can fail with a diagnosis instead of hanging.
    """
    deadline = time.monotonic() + timeout
    base = Path(directory)
    while time.monotonic() < deadline:
        if any(base.glob("started-*")):
            return True
        time.sleep(_POLL_SECONDS)
    return False


def echo_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """The no-fault control."""
    return expected(items)


def raise_once_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Transient failure: raise on the first attempt, succeed after."""
    sentinel = _sentinel(context, "raise", items)
    if not sentinel.exists():
        sentinel.touch()
        raise RuntimeError(f"transient failure on chunk starting at {items[0]}")
    return expected(items)


def always_raise_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Deterministic failure: every attempt raises (retry exhaustion)."""
    raise ValueError(f"permanent failure on chunk starting at {items[0]}")


def crash_once_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Kill the worker process once for the chunk containing item 0."""
    if 0 in items and os.getpid() != context["main_pid"]:
        sentinel = _sentinel(context, "crash", items)
        if not sentinel.exists():
            sentinel.touch()
            os._exit(13)
    return expected(items)


def crash_always_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Kill every worker process that touches any chunk — the process
    backend can never finish; thread/serial fallback computes normally."""
    if os.getpid() != context["main_pid"]:
        os._exit(13)
    return expected(items)


def hang_once_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Hang (event-bounded) on the first attempt of the chunk with item 0."""
    sentinel = _sentinel(context, "hang", items)
    if 0 in items and not sentinel.exists():
        sentinel.touch()
        _hang(context)
    return expected(items)


def hang_always_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Every attempt of every chunk hangs (event-bounded) — timeout
    exhaustion."""
    _hang(context)
    return expected(items)


def slow_chunk(context: dict, items: Sequence[int]) -> list[int]:
    """Slow but healthy — used by the interrupt test to guarantee the
    map is still in flight when the signal arrives.  Announces itself so
    the victim can signal as soon as work is actually running."""
    mark_chunk_started(context, items)
    time.sleep(0.2)
    return expected(items)
