"""Corruption and replay-determinism tests for the ingest WAL.

The journal inherits the checkpoint contract — torn final line silent,
anything else warned and skipped — and adds the serving guarantee on
top: whatever subset of records survives, ``IngestJournal.replay``
returns the same records in the same order every time, so recovery is
deterministic.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.exceptions import CheckpointError, JournalCorruptionWarning
from repro.serve.journal import (
    IngestJournal,
    IngestRecord,
    QuarantineStore,
    decode_statuses,
    encode_statuses,
)
from repro.simulation.statuses import StatusMatrix


def _batch(seed: int, beta: int = 7, n_nodes: int = 9, masked: bool = False):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 2, size=(beta, n_nodes), dtype=np.uint8)
    values[:, 0] = 1  # keep at least one infection per process
    mask = None
    if masked:
        mask = rng.random((beta, n_nodes)) > 0.2
        mask[:, 0] = True
    return StatusMatrix(values, mask)


class TestStatusCodec:
    @pytest.mark.parametrize("masked", [False, True])
    def test_roundtrip_is_bit_exact(self, masked):
        statuses = _batch(1, masked=masked)
        decoded = decode_statuses(encode_statuses(statuses))
        np.testing.assert_array_equal(decoded.values, statuses.values)
        if masked:
            np.testing.assert_array_equal(decoded.mask, statuses.mask)
        else:
            assert decoded.mask is None

    def test_payload_is_json_safe_and_compact(self):
        statuses = _batch(2, beta=50, n_nodes=40)
        payload = encode_statuses(statuses)
        line = json.dumps(payload)
        digits = json.dumps(statuses.values.tolist())
        assert len(line) < len(digits) / 3  # packbits + base64 vs digit list
        assert decode_statuses(json.loads(line)).values.shape == (50, 40)

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"shape": [2, 2]},
            {"shape": [2], "bits": "AA=="},
            {"shape": [2, 2], "bits": 17},
        ],
    )
    def test_malformed_payload_raises_checkpoint_error(self, payload):
        with pytest.raises(CheckpointError):
            decode_statuses(payload)


class TestAppendReplay:
    def test_replay_returns_records_in_sequence_order(self, tmp_path):
        path = tmp_path / "ingest.jsonl"
        with IngestJournal(path) as journal:
            expected = [journal.append(_batch(seed)) for seed in range(5)]
        replayed = IngestJournal.replay(path)
        assert [r.seq for r in replayed] == [r.seq for r in expected] == [1, 2, 3, 4, 5]
        for got, want in zip(replayed, expected):
            np.testing.assert_array_equal(got.statuses.values, want.statuses.values)

    def test_sequence_numbers_continue_across_reopen(self, tmp_path):
        path = tmp_path / "ingest.jsonl"
        with IngestJournal(path) as journal:
            journal.append(_batch(0))
            journal.append(_batch(1))
        with IngestJournal(path) as journal:
            assert journal.next_seq == 3
            assert journal.append(_batch(2)).seq == 3

    def test_after_seq_filters_already_absorbed_records(self, tmp_path):
        path = tmp_path / "ingest.jsonl"
        with IngestJournal(path) as journal:
            for seed in range(6):
                journal.append(_batch(seed))
        assert [r.seq for r in IngestJournal.replay(path, after_seq=4)] == [5, 6]

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert IngestJournal.replay(tmp_path / "never-written.jsonl") == []


class TestJournalDamage:
    def _journal(self, tmp_path, n=5):
        path = tmp_path / "ingest.jsonl"
        with IngestJournal(path) as journal:
            for seed in range(n):
                journal.append(_batch(seed))
        return path

    def test_torn_final_line_is_dropped_silently(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            replayed = IngestJournal.replay(path)
        assert [r.seq for r in replayed] == [1, 2, 3, 4]

    def test_midfile_bit_flip_is_caught_by_crc_and_skipped(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip one payload byte of record 3: still valid JSON, wrong CRC.
        damaged = bytearray(lines[2])
        target = damaged.find(b'"bits"') + 10
        damaged[target] = ord("A") if damaged[target] != ord("A") else ord("B")
        lines[2] = bytes(damaged)
        path.write_bytes(b"".join(lines))
        with pytest.warns(JournalCorruptionWarning, match="line 3"):
            replayed = IngestJournal.replay(path)
        assert [r.seq for r in replayed] == [1, 2, 4, 5]

    def test_duplicated_record_keeps_first_and_warns(self, tmp_path):
        path = self._journal(tmp_path, n=3)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join([lines[0], lines[1], lines[1], lines[2]]))
        with pytest.warns(JournalCorruptionWarning, match="duplicate"):
            replayed = IngestJournal.replay(path)
        assert [r.seq for r in replayed] == [1, 2, 3]
        # A reopened journal still assigns fresh sequence numbers.
        with IngestJournal(path) as journal:
            assert journal.next_seq == 4

    def test_survivors_replay_deterministically(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"not": "an ingest record"}\n'
        path.write_bytes(b"".join(lines))
        with pytest.warns(JournalCorruptionWarning):
            first = IngestJournal.replay(path)
        with pytest.warns(JournalCorruptionWarning):
            second = IngestJournal.replay(path)
        assert [r.seq for r in first] == [r.seq for r in second] == [1, 3, 4, 5]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.statuses.values, b.statuses.values)

    def test_wrong_format_line_is_skipped_with_warning(self, tmp_path):
        path = self._journal(tmp_path, n=2)
        from repro.evaluation.checkpoint import DurableJsonlWriter

        with DurableJsonlWriter(path) as writer:
            writer.append({"format": "repro.other_thing", "seq": 99})
        with pytest.warns(JournalCorruptionWarning, match="not an ingest record"):
            replayed = IngestJournal.replay(path)
        assert [r.seq for r in replayed] == [1, 2]


class TestQuarantineStore:
    def test_roundtrip_and_last_verdict_wins(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        with QuarantineStore(path) as store:
            store.add(3, reason="shed")
            store.add(7, reason="absorb-failed", error="boom",
                      findings=["all-zero (never spread) processes: 2"])
            store.add(3, reason="absorb-failed", error="later verdict")
        entries = QuarantineStore.load(path)
        assert set(entries) == {3, 7}
        assert entries[3]["reason"] == "absorb-failed"
        assert entries[7]["findings"] == ["all-zero (never spread) processes: 2"]

    def test_missing_store_is_empty(self, tmp_path):
        assert QuarantineStore.load(tmp_path / "nope.jsonl") == {}

    def test_damaged_line_is_skipped(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        with QuarantineStore(path) as store:
            store.add(1, reason="shed")
            store.add(2, reason="shed")
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"garbage that is not json\n"
        path.write_bytes(b"".join(lines))
        with pytest.warns(JournalCorruptionWarning):
            entries = QuarantineStore.load(path)
        assert set(entries) == {2}
