"""Method isolation in the experiment harness.

One fragile baseline must never discard the rest of a sweep: the failure
boundary records crashes and timeouts as failed :class:`MethodResult`
cells and the aggregation keeps them visible without poisoning the means.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.baselines.base import TendsInferrer
from repro.baselines.netrate import NetRate
from repro.evaluation.harness import (
    ExperimentSpec,
    MethodSpec,
    SweepPoint,
    run_experiment,
)
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.graphs.generators.random_graphs import erdos_renyi_digraph


class BoomInferrer:
    def infer(self, observations):
        raise ValueError("kaboom")


class FlakyInferrer:
    """Fails on the first call of each instance's shared counter."""

    calls = 0

    def infer(self, observations):
        type(self).calls += 1
        if type(self).calls == 1:
            raise RuntimeError("flaky first attempt")
        return TendsInferrer().infer(observations)


class SlowInferrer:
    """Blocks until released (event-based, bounded) to trip the method
    timeout deterministically.

    The harness runs the method in a worker thread it abandons on
    timeout; waiting on an event the test sets afterwards lets that
    thread exit immediately instead of sleeping out a fixed delay, and
    guarantees the timeout fires first however slow the runner is.
    """

    release = threading.Event()

    def infer(self, observations):
        type(self).release.wait(timeout=10.0)
        return TendsInferrer().infer(observations)


@pytest.fixture
def slow_release():
    SlowInferrer.release.clear()
    yield
    SlowInferrer.release.set()


def make_spec(*methods: MethodSpec, replicates: int = 1) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="faults",
        title="fault harness",
        x_label="n",
        points=(
            SweepPoint(
                "n=20",
                20.0,
                lambda seed: erdos_renyi_digraph(20, 0.1, seed=seed),
                beta=40,
            ),
        ),
        methods=methods,
        replicates=replicates,
    )


TENDS = MethodSpec("TENDS", lambda ctx: TendsInferrer())
BOOM = MethodSpec("BOOM", lambda ctx: BoomInferrer())


class TestOnErrorPolicies:
    def test_default_raise_fails_fast(self):
        spec = make_spec(TENDS, BOOM)
        with pytest.raises(ValueError, match="kaboom"):
            run_experiment(spec, seed=1)

    def test_skip_records_the_failure_and_continues(self):
        spec = make_spec(BOOM, TENDS, replicates=2)
        result = run_experiment(spec, seed=1, on_error="skip")
        assert len(result.results) == 4
        failures = result.failures()
        assert [r.method for r in failures] == ["BOOM", "BOOM"]
        for r in failures:
            assert r.error == "ValueError: kaboom"
            assert math.isnan(r.f_score)
            assert not r.ok
        # TENDS cells are untouched by BOOM's crashes.
        good = [r for r in result.results if r.method == "TENDS"]
        assert all(r.ok and not math.isnan(r.f_score) for r in good)

    def test_skip_keeps_failures_out_of_the_aggregates(self):
        spec = make_spec(BOOM, TENDS, replicates=2)
        rows = run_experiment(spec, seed=1, on_error="skip").aggregated()
        by_method = {row["method"]: row for row in rows}
        assert by_method["BOOM"]["failed"] == 2
        assert math.isnan(by_method["BOOM"]["f_score"])
        assert by_method["TENDS"]["failed"] == 0
        assert not math.isnan(by_method["TENDS"]["f_score"])

    def test_retry_rehabilitates_a_flaky_method(self):
        FlakyInferrer.calls = 0
        spec = make_spec(MethodSpec("FLAKY", lambda ctx: FlakyInferrer()))
        result = run_experiment(
            spec, seed=1, on_error="retry", method_attempts=2
        )
        (cell,) = result.results
        assert cell.ok
        assert cell.attempts == 2

    def test_retry_exhaustion_records_the_failure(self):
        spec = make_spec(BOOM)
        result = run_experiment(
            spec, seed=1, on_error="retry", method_attempts=3
        )
        (cell,) = result.results
        assert not cell.ok
        assert cell.attempts == 3
        assert cell.error == "ValueError: kaboom"

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ConfigurationError, match="on_error"):
            run_experiment(make_spec(TENDS), seed=1, on_error="ignore")

    def test_bad_method_timeout_is_rejected(self):
        with pytest.raises(ConfigurationError, match="method_timeout"):
            run_experiment(make_spec(TENDS), seed=1, method_timeout=0.0)


class TestMethodTimeout:
    def test_timeout_is_recorded_as_a_failure(self, slow_release):
        spec = make_spec(MethodSpec("SLOW", lambda ctx: SlowInferrer()), TENDS)
        result = run_experiment(
            spec, seed=1, on_error="skip", method_timeout=0.2
        )
        slow = next(r for r in result.results if r.method == "SLOW")
        assert not slow.ok
        assert "MethodTimeoutError" in slow.error
        tends = next(r for r in result.results if r.method == "TENDS")
        assert tends.ok

    def test_timeout_under_raise_propagates(self, slow_release):
        from repro.exceptions import MethodTimeoutError

        spec = make_spec(MethodSpec("SLOW", lambda ctx: SlowInferrer()))
        with pytest.raises(MethodTimeoutError):
            run_experiment(spec, seed=1, method_timeout=0.2)

    def test_fast_method_is_unaffected_by_the_budget(self):
        result = run_experiment(
            make_spec(TENDS), seed=1, on_error="skip", method_timeout=30.0
        )
        assert result.results[0].ok


class TestNetRateConvergenceIsolation:
    """Regression: a NetRate ConvergenceError (iteration budget 1, strict)
    must surface as a failed cell, not kill the sweep."""

    def test_convergence_error_is_isolated(self):
        spec = make_spec(
            MethodSpec(
                "NetRate",
                lambda ctx: NetRate(max_iterations=1, strict=True),
                best_threshold=True,
            ),
            TENDS,
        )
        result = run_experiment(spec, seed=1, on_error="skip")
        netrate = next(r for r in result.results if r.method == "NetRate")
        assert not netrate.ok
        assert netrate.error.startswith("ConvergenceError:")
        assert math.isnan(netrate.f_score)
        tends = next(r for r in result.results if r.method == "TENDS")
        assert tends.ok

    def test_strict_netrate_raises_under_default_policy(self):
        spec = make_spec(
            MethodSpec(
                "NetRate", lambda ctx: NetRate(max_iterations=1, strict=True)
            )
        )
        with pytest.raises(ConvergenceError):
            run_experiment(spec, seed=1)

    def test_non_strict_netrate_still_succeeds_on_budget_one(self):
        spec = make_spec(
            MethodSpec("NetRate", lambda ctx: NetRate(max_iterations=1))
        )
        result = run_experiment(spec, seed=1)
        assert result.results[0].ok
