"""Crash and corruption recovery for the tiled statistics layer.

Three guarantees under fault:

* **Worker death mid-tile** — the stage-3 executor machinery replaces
  the dead process, retries the chunk, and the recomputed tiles are
  bit-identical (integer counts have one value; recomputation is
  invisible in the result).
* **Torn / corrupted spill** — a resume over a spill directory with
  missing tiles, flipped bytes, truncated payloads, or garbage CRC
  sidecars recomputes exactly the invalid tiles and completes to the
  same checksum as an uninterrupted dense run.
* **Serve under tiling** — ``kill -9`` an ingest service running with
  ``tile_size``/``spill_dir`` overrides; the recovered model's
  fingerprint equals an uninterrupted *dense* reference over the same
  acknowledged batches (docs/SERVING.md contract, now with spill).
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.executor import ExecutionPlan, ParallelExecutor, RetryPolicy
from repro.core.stats import COUNT_KEYS, SufficientStats
from repro.core.tends import Tends
from repro.core.tiles import (
    TileGrid,
    TiledSufficientStats,
    _build_context,
    validate_tile,
)
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.obs.metrics import MetricsRegistry
from repro.serve import IngestJournal, IngestService, QuarantineStore
from repro.simulation import io as sim_io
from repro.simulation.engine import DiffusionSimulator
from tests.faults import tile_fault_lib

WAIT = 60.0


def _observations(n=18, beta=60, seed=3):
    truth = erdos_renyi_digraph(n, 0.12, seed=seed)
    return DiffusionSimulator(truth, seed=seed).run(beta=beta).statuses


def _plan(strategy="process", max_attempts=3):
    return ExecutionPlan(
        strategy=strategy,
        n_jobs=2,
        chunk_size=2,
        retry=RetryPolicy(max_attempts=max_attempts, backoff_seconds=0.01),
    )


def _tile_mtimes(directory: Path) -> dict:
    return {
        path.name: path.stat().st_mtime_ns
        for path in directory.glob("tile-*.npy")
    }


class TestWorkerCrashMidTile:
    def test_crashed_worker_is_retried_bit_identically(self, tmp_path):
        statuses = _observations()
        grid = TileGrid(statuses.n_nodes, 5)
        inner = _build_context(statuses, grid, None)
        context = {
            "inner": inner,
            "dir": str(tmp_path),
            "main_pid": os.getpid(),
        }
        executor = ParallelExecutor(_plan())
        results, _ = executor.map(
            tile_fault_lib.crash_once_tile_chunk, context, grid.blocks()
        )
        assert (tmp_path / "crashed").exists(), "fault never fired"

        truth = dict(
            tile_fault_lib.echo_tile_chunk(context, grid.blocks())
        )
        recovered = dict(results)
        assert recovered.keys() == truth.keys()
        for block, stack in truth.items():
            assert np.array_equal(recovered[block], stack), block

    def test_crash_while_spilling_completes_every_tile(self, tmp_path):
        """The worker dies after writing one tile of its chunk; the
        retried chunk rewrites the identical bytes and the spill ends up
        complete and valid."""
        statuses = _observations()
        grid = TileGrid(statuses.n_nodes, 5)
        spill = tmp_path / "gen"
        spill.mkdir()
        inner = _build_context(statuses, grid, None, directory=str(spill))
        context = {
            "inner": inner,
            "dir": str(tmp_path),
            "main_pid": os.getpid(),
        }
        executor = ParallelExecutor(_plan())
        executor.map(
            tile_fault_lib.crash_after_one_tile_chunk, context, grid.blocks()
        )
        assert (tmp_path / "crashed").exists(), "fault never fired"

        dense = SufficientStats.from_statuses(statuses)
        from repro.core.tiles import read_tile

        for block in grid.blocks():
            shape = (len(COUNT_KEYS),) + grid.block_shape(*block)
            assert validate_tile(spill, block, shape), block
            stack = read_tile(spill, block, shape)
            a0, a1 = grid.span(block[0])
            b0, b1 = grid.span(block[1])
            for index, key in enumerate(COUNT_KEYS):
                assert np.array_equal(
                    stack[index], dense.counts[key][a0:a1, b0:b1]
                ), (block, key)


class TestTornSpillRecovery:
    @pytest.fixture
    def spilled(self, tmp_path):
        statuses = _observations()
        stats = TiledSufficientStats.from_statuses(
            statuses, tile_size=5, spill_dir=tmp_path
        )
        checksum = stats.checksum()
        stats.store.drop_cache()
        return statuses, tmp_path / "gen-00000000", checksum

    def _resume(self, statuses, spill_root, metrics=None):
        return TiledSufficientStats.from_statuses(
            statuses,
            tile_size=5,
            spill_dir=spill_root,
            metrics=metrics or MetricsRegistry(),
        )

    def test_deleted_tiles_are_recomputed(self, spilled, tmp_path):
        statuses, gen, checksum = spilled
        tiles = sorted(gen.glob("tile-*.npy"))
        tiles[0].unlink()
        tiles[2].unlink()
        (tiles[2].with_suffix(".npy.crc")).unlink()
        # A torn temp file from a killed writer must be ignored too.
        (gen / "tile-xxxxx.npy.tmp-dead").write_bytes(b"torn")
        survivors = _tile_mtimes(gen)

        metrics = MetricsRegistry()
        stats = self._resume(statuses, tmp_path, metrics)
        assert stats.checksum() == checksum
        counters = metrics.snapshot()["counters"]
        assert counters["tiles_computed_total"] == 2
        assert counters["tiles_reused_total"] == len(survivors)
        after = _tile_mtimes(gen)
        for name, mtime in survivors.items():
            assert after[name] == mtime, f"valid tile {name} was rewritten"

    def test_corrupted_payload_is_recomputed(self, spilled, tmp_path):
        statuses, gen, checksum = spilled
        victim = sorted(gen.glob("tile-*.npy"))[1]
        payload = bytearray(victim.read_bytes())
        payload[-3] ^= 0x5A
        victim.write_bytes(bytes(payload))

        metrics = MetricsRegistry()
        stats = self._resume(statuses, tmp_path, metrics)
        assert stats.checksum() == checksum
        assert metrics.snapshot()["counters"]["tiles_computed_total"] == 1

    def test_truncated_payload_is_recomputed(self, spilled, tmp_path):
        statuses, gen, checksum = spilled
        victim = sorted(gen.glob("tile-*.npy"))[3]
        victim.write_bytes(victim.read_bytes()[:17])
        assert self._resume(statuses, tmp_path).checksum() == checksum

    def test_garbage_sidecar_is_recomputed(self, spilled, tmp_path):
        statuses, gen, checksum = spilled
        victim = sorted(gen.glob("tile-*.npy.crc"))[0]
        victim.write_text("{torn json")
        assert self._resume(statuses, tmp_path).checksum() == checksum

    def test_clean_resume_skips_every_completed_tile(self, spilled, tmp_path):
        statuses, gen, checksum = spilled
        before = _tile_mtimes(gen)
        metrics = MetricsRegistry()
        stats = self._resume(statuses, tmp_path, metrics)
        assert stats.checksum() == checksum
        counters = metrics.snapshot()["counters"]
        assert counters.get("tiles_computed_total", 0) == 0
        assert counters["tiles_reused_total"] == len(before)
        assert _tile_mtimes(gen) == before

    def test_torn_metadata_wipes_and_recounts(self, spilled, tmp_path):
        statuses, gen, checksum = spilled
        (gen / "spill-meta.json").write_text("{half a rec")
        metrics = MetricsRegistry()
        stats = self._resume(statuses, tmp_path, metrics)
        assert stats.checksum() == checksum
        counters = metrics.snapshot()["counters"]
        assert counters["tiles_computed_total"] == len(
            stats.grid.blocks()
        )


#: Ingest service child identical to the test_serve_crash one, except the
#: estimator runs with tiling overrides — counts fan out over tiles and
#: spill under the service directory while batches stream in.
CHILD = textwrap.dedent(
    """
    import itertools, sys
    from pathlib import Path

    from repro.core.tends import TendsModel
    from repro.serve import BatchPolicy, IngestService
    from repro.simulation import io as sim_io

    directory, spool = Path(sys.argv[1]), Path(sys.argv[2])
    batches = [
        sim_io.read_statuses_npz(path) for path in sorted(spool.glob("*.npz"))
    ]
    service = IngestService(
        directory,
        TendsModel.load(spool / "bootstrap" / "model.npz"),
        batch_policy=BatchPolicy(max_cascades=15, max_delay_seconds=0.01),
        snapshot_every=3,
        estimator_overrides={
            "tile_size": 5,
            "spill_dir": str(directory / "spill"),
        },
    ).start()
    print("READY", flush=True)
    for batch in itertools.cycle(batches):
        try:
            service.submit(batch, timeout=5.0)
        except Exception:
            break
    """
)


@pytest.fixture(scope="module")
def spool(tmp_path_factory):
    root = tmp_path_factory.mktemp("tiled-spool")
    truth = erdos_renyi_digraph(12, 0.15, seed=11)
    statuses = DiffusionSimulator(truth, seed=11).run(beta=200).statuses
    base = statuses.subset(range(120))
    estimator = Tends()
    estimator.fit(base)
    (root / "bootstrap").mkdir()
    estimator.model.save(root / "bootstrap" / "model.npz")
    sim_io.write_statuses_npz(base, root / "bootstrap" / "base.npz")
    for i in range(8):
        sim_io.write_statuses_npz(
            statuses.subset(range(120 + i * 10, 120 + (i + 1) * 10)),
            root / f"batch{i}.npz",
        )
    return root


def spawn_child(directory: Path, spool: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(Path("src").resolve()), env.get("PYTHONPATH", "")])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(directory), str(spool)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert child.stdout.readline().strip() == "READY", (
        "child failed to start: " + child.stderr.read()
    )
    return child


def wait_for_journal(directory: Path, min_bytes: int, timeout: float = WAIT):
    journal = directory / "ingest.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists() and journal.stat().st_size >= min_bytes:
            return
        time.sleep(0.01)
    raise AssertionError("child never journaled enough traffic")


def dense_reference(spool: Path, directory: Path) -> str:
    """Fingerprint of an uninterrupted, *untiled* run over exactly the
    acknowledged (journaled, non-quarantined) sequence."""
    estimator = Tends()
    estimator.fit(sim_io.read_statuses_npz(spool / "bootstrap" / "base.npz"))
    quarantined = set(QuarantineStore.load(directory / "quarantine.jsonl"))
    for record in IngestJournal.replay(directory / "ingest.jsonl"):
        if record.seq not in quarantined:
            estimator.partial_fit(record.statuses)
    return estimator.model.fingerprint()


class TestServeUnderTilingSigkill:
    def test_recovery_matches_dense_reference(self, tmp_path, spool):
        directory = tmp_path / "svc"
        child = spawn_child(directory, spool)
        try:
            wait_for_journal(directory, 6_000)
        finally:
            child.kill()  # SIGKILL mid-absorb, spill half-written
            child.wait(WAIT)

        recovered = IngestService(directory)
        try:
            fingerprint = recovered.model.fingerprint()
            watermark = recovered.stats().absorbed_seq
        finally:
            recovered.close()
        assert fingerprint == dense_reference(spool, directory)
        assert watermark > 0
