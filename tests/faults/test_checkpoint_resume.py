"""Checkpoint journal round-trips and crash-resume determinism."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.baselines.base import TendsInferrer
from repro.evaluation.checkpoint import (
    CheckpointJournal,
    cell_key,
    checkpoint_path_for,
    load_checkpoint,
    method_result_from_json,
    method_result_to_json,
)
from repro.evaluation.harness import (
    ExperimentSpec,
    MethodSpec,
    SweepPoint,
    run_experiment,
)
from repro.exceptions import CheckpointError, JournalCorruptionWarning
from repro.graphs.generators.random_graphs import erdos_renyi_digraph


class BoomInferrer:
    def infer(self, observations):
        raise ValueError("kaboom")


def golden_spec(replicates: int = 2) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="golden",
        title="checkpoint fixture",
        x_label="n",
        points=tuple(
            SweepPoint(
                f"n={n}",
                float(n),
                (lambda n: lambda seed: erdos_renyi_digraph(n, 0.1, seed=seed))(n),
                beta=40,
            )
            for n in (15, 20)
        ),
        methods=(
            MethodSpec("TENDS", lambda ctx: TendsInferrer()),
            MethodSpec("BOOM", lambda ctx: BoomInferrer()),
        ),
        replicates=replicates,
    )


def strip_runtimes(results):
    """Wall-clock is the one legitimately non-deterministic field."""
    return tuple(replace(r, runtime_seconds=0.0) for r in results)


class TestJournalRoundTrip:
    def test_every_cell_round_trips(self, tmp_path):
        spec = golden_spec()
        path = tmp_path / "golden.jsonl"
        result = run_experiment(
            spec, seed=7, on_error="skip", checkpoint_path=path
        )
        cells = load_checkpoint(path, experiment_id="golden")
        assert len(cells) == len(result.results)
        for r in result.results:
            loaded = cells[cell_key(r.point_label, r.replicate, r.method)]
            assert loaded == r
            # 15 == 15.0 would pass equality but desync a resumed archive
            # on integer sweep axes — the loader must keep the JSON type.
            assert type(loaded.point_value) is type(r.point_value)

    def test_record_serialisation_is_lossless(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        result = run_experiment(
            spec, seed=7, on_error="skip", checkpoint_path=path
        )
        for r in result.results:
            assert method_result_from_json(method_result_to_json(r)) == r

    def test_journal_is_append_only_across_runs(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        first = len(path.read_text().splitlines())
        run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        assert len(path.read_text().splitlines()) == 2 * first

    def test_missing_file_is_an_empty_checkpoint(self, tmp_path):
        assert load_checkpoint(tmp_path / "never-written.jsonl") == {}

    def test_journal_context_manager_closes(self, tmp_path):
        spec = golden_spec(replicates=1)
        result = run_experiment(spec, seed=7, on_error="skip")
        path = tmp_path / "ctx.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record(result.results[0])
        assert journal._handle is None
        assert len(load_checkpoint(path)) == 1

    def test_checkpoint_path_for_is_per_experiment(self, tmp_path):
        path = checkpoint_path_for(tmp_path, "fig3")
        assert path == tmp_path / "fig3.checkpoint.jsonl"


class TestCorruptionTolerance:
    def test_truncated_final_line_is_dropped(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        cells = load_checkpoint(path, experiment_id="golden")
        assert len(cells) == len(lines) - 1

    def test_midfile_truncation_is_skipped_with_warning(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:20]  # damage a non-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(JournalCorruptionWarning, match="line 1"):
            cells = load_checkpoint(path)
        assert len(cells) == len(lines) - 1

    def test_midfile_bit_flip_is_detected_by_crc(self, tmp_path):
        # A flipped digit keeps the line perfectly parseable JSON — only
        # the per-record CRC can tell the payload no longer matches what
        # was journaled.
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        lines = path.read_text().splitlines()
        assert '"replicate":0' in lines[0]
        flipped = lines[0].replace('"replicate":0', '"replicate":8', 1)
        assert json.loads(flipped)  # still valid JSON
        lines[0] = flipped
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(JournalCorruptionWarning, match="CRC mismatch"):
            cells = load_checkpoint(path)
        assert len(cells) == len(lines) - 1
        # The damaged cell is gone (not silently absorbed with bad data).
        assert all(key[1] != 8 for key in cells)

    def test_resume_recomputes_crc_damaged_cells_bit_identically(self, tmp_path):
        spec = golden_spec()
        path = tmp_path / "golden.jsonl"
        full = run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        lines = path.read_text().splitlines()
        # Flip a byte inside an early record's payload, leaving it valid
        # JSON; the resume must drop it via CRC and recompute that cell.
        assert '"tp":' in lines[1]
        lines[1] = lines[1].replace('"tp":', '"tp":1', 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(JournalCorruptionWarning, match="CRC mismatch"):
            resumed = run_experiment(
                spec, seed=7, on_error="skip", resume_from=path
            )
        assert strip_runtimes(resumed.results) == strip_runtimes(full.results)

    def test_duplicated_record_is_flagged_and_deduplicated(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        full = run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        lines = path.read_text().splitlines()
        # Replay the first record verbatim mid-file (a crash between
        # fsync and the in-memory ack can journal a batch twice).
        doctored = [lines[0], lines[1], lines[0], *lines[2:]]
        path.write_text("\n".join(doctored) + "\n")
        with pytest.warns(JournalCorruptionWarning, match="duplicate record"):
            cells = load_checkpoint(path)
        assert len(cells) == len(lines)
        resumed = run_experiment(spec, seed=7, on_error="skip", resume_from=path)
        assert resumed.results == full.results

    def test_duplicate_cells_keep_the_last_write(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        result = run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        target = result.results[0]
        doctored = method_result_to_json(replace(target, runtime_seconds=123.0))
        with path.open("a") as handle:
            handle.write(json.dumps(doctored) + "\n")
        cells = load_checkpoint(path)
        key = cell_key(target.point_label, target.replicate, target.method)
        assert cells[key].runtime_seconds == 123.0

    def test_wrong_experiment_id_raises(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        with pytest.raises(CheckpointError, match="belongs to experiment"):
            load_checkpoint(path, experiment_id="other")


class TestResumeDeterminism:
    def test_full_checkpoint_resume_is_bit_identical(self, tmp_path):
        spec = golden_spec()
        path = tmp_path / "golden.jsonl"
        full = run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        resumed = run_experiment(spec, seed=7, on_error="skip", resume_from=path)
        # Every cell loads from the journal, so even runtimes round-trip.
        assert resumed.results == full.results

    def test_partial_checkpoint_resume_matches_uninterrupted_run(self, tmp_path):
        spec = golden_spec()
        path = tmp_path / "golden.jsonl"
        full = run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        # Simulate a crash: keep roughly half the journal, with the last
        # kept line torn mid-write.
        lines = path.read_text().splitlines()
        keep = len(lines) // 2
        path.write_text("\n".join(lines[:keep]) + "\n" + lines[keep][:30])
        resumed = run_experiment(spec, seed=7, on_error="skip", resume_from=path)
        assert strip_runtimes(resumed.results) == strip_runtimes(full.results)

    def test_resume_preserves_journaled_failures(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        resumed = run_experiment(spec, seed=7, on_error="skip", resume_from=path)
        assert [r.method for r in resumed.failures()] == ["BOOM", "BOOM"]

    def test_retry_failed_reruns_only_the_failed_cells(self, tmp_path):
        spec = golden_spec(replicates=1)
        path = tmp_path / "golden.jsonl"
        full = run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)
        resumed = run_experiment(
            spec, seed=7, on_error="skip", resume_from=path, retry_failed=True
        )
        # BOOM still fails deterministically; TENDS cells load untouched.
        assert strip_runtimes(resumed.results) == strip_runtimes(full.results)
        for r in resumed.results:
            if r.method == "TENDS":
                assert r in full.results  # loaded, not recomputed

    def test_resume_skips_simulation_for_complete_points(self, tmp_path, monkeypatch):
        spec = golden_spec()
        path = tmp_path / "golden.jsonl"
        run_experiment(spec, seed=7, on_error="skip", checkpoint_path=path)

        import repro.evaluation.harness as harness_module

        def exploding_simulator(*args, **kwargs):
            raise AssertionError("simulation should have been skipped")

        monkeypatch.setattr(
            harness_module, "DiffusionSimulator", exploding_simulator
        )
        resumed = run_experiment(spec, seed=7, on_error="skip", resume_from=path)
        assert len(resumed.results) == len(spec.points) * 2 * len(spec.methods)
