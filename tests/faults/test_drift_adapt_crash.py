"""SIGKILL recovery with the self-healing drift policy active.

The serving recovery guarantee must survive the drift machinery: with
``drift="adapt"`` the absorb loop detects per-record and may rebase the
model mid-stream, so replay must re-detect and re-adapt at exactly the
same points.  The spool alternates batches from two different ground
truths, guaranteeing adaptations actually fire while the child is being
killed.  The reference is an uninterrupted drift-aware run over exactly
the acknowledged (journaled, non-quarantined) sequence — fingerprints
must match bit for bit.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.core.drift import DriftConfig
from repro.core.tends import Tends
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.serve import IngestJournal, IngestService, QuarantineStore
from repro.simulation import io as sim_io
from repro.simulation.engine import DiffusionSimulator

WAIT = 60.0

#: Same detector knobs in child, recovery, and reference.  The tiny
#: min_window_beta lets 20-cascade records trigger detection.
DRIFT_KWARGS = dict(alpha=0.01, min_window_beta=5, min_pair_obs=5)

CHILD = textwrap.dedent(
    """
    import itertools, sys
    from pathlib import Path

    from repro.core.drift import DriftConfig
    from repro.core.tends import TendsModel
    from repro.serve import BatchPolicy, IngestService
    from repro.simulation import io as sim_io

    directory, spool = Path(sys.argv[1]), Path(sys.argv[2])
    batches = [
        sim_io.read_statuses_npz(path) for path in sorted(spool.glob("*.npz"))
    ]
    service = IngestService(
        directory,
        TendsModel.load(spool / "bootstrap" / "model.npz"),
        batch_policy=BatchPolicy(max_cascades=40, max_delay_seconds=0.01),
        snapshot_every=3,
        drift="adapt",
        drift_config=DriftConfig(alpha=0.01, min_window_beta=5, min_pair_obs=5),
    ).start()
    service.handle_signals()
    print("READY", flush=True)
    for batch in itertools.cycle(batches):
        if service.shutdown_requested:
            break
        try:
            service.submit(batch, timeout=5.0)
        except Exception:
            break
        service.wait_for_shutdown(0.01)
    service.close(drain=True)
    """
)


@pytest.fixture(scope="module")
def spool(tmp_path_factory):
    """Bootstrap on truth A; spool alternates truth-A / truth-B batches."""
    root = tmp_path_factory.mktemp("drift-spool")
    truth_a = erdos_renyi_digraph(12, 0.15, seed=21)
    truth_b = erdos_renyi_digraph(12, 0.15, seed=22)
    stream_a = DiffusionSimulator(truth_a, seed=21).run(beta=140).statuses
    stream_b = DiffusionSimulator(truth_b, seed=22).run(beta=80).statuses
    base = stream_a.subset(range(60))
    estimator = Tends()
    estimator.fit(base)
    (root / "bootstrap").mkdir()
    estimator.model.save(root / "bootstrap" / "model.npz")
    sim_io.write_statuses_npz(base, root / "bootstrap" / "base.npz")
    for i in range(4):
        sim_io.write_statuses_npz(
            stream_a.subset(range(60 + i * 20, 60 + (i + 1) * 20)),
            root / f"batch{2 * i}a.npz",
        )
        sim_io.write_statuses_npz(
            stream_b.subset(range(i * 20, (i + 1) * 20)),
            root / f"batch{2 * i}b.npz",
        )
    return root


def spawn_child(directory: Path, spool: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(Path("src").resolve()), env.get("PYTHONPATH", "")])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(directory), str(spool)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert child.stdout.readline().strip() == "READY", (
        "child failed to start: " + child.stderr.read()
    )
    return child


def wait_for_journal(directory: Path, min_bytes: int, timeout: float = WAIT):
    journal = directory / "ingest.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists() and journal.stat().st_size >= min_bytes:
            return
        time.sleep(0.01)
    raise AssertionError("child never journaled enough traffic")


def drift_reference(spool: Path, directory: Path) -> tuple[str, int]:
    """Uninterrupted drift-aware run over the acknowledged sequence.

    Mirrors the service's per-record absorb under an active drift
    policy: detect on every record, adapt whenever the report flags.
    Returns ``(fingerprint, adaptations)``.
    """
    config = DriftConfig(**DRIFT_KWARGS)
    estimator = Tends()
    estimator.fit(sim_io.read_statuses_npz(spool / "bootstrap" / "base.npz"))
    quarantined = set(QuarantineStore.load(directory / "quarantine.jsonl"))
    adaptations = 0
    for record in IngestJournal.replay(directory / "ingest.jsonl"):
        if record.seq in quarantined:
            continue
        result = estimator.partial_fit(
            record.statuses, drift="detect", drift_config=config
        )
        if result.drift is not None and result.drift.drifted:
            estimator.apply_drift_adaptation(result.drift)
            adaptations += 1
    return estimator.model.fingerprint(), adaptations


def reopen(directory: Path) -> IngestService:
    return IngestService(
        directory,
        drift="adapt",
        drift_config=DriftConfig(**DRIFT_KWARGS),
    )


class TestAdaptCrashRecovery:
    @pytest.mark.parametrize("journal_bytes", [4_000, 16_000])
    def test_sigkill_mid_adaptation_recovers_bit_identical(
        self, tmp_path, spool, journal_bytes
    ):
        directory = tmp_path / "svc"
        child = spawn_child(directory, spool)
        try:
            wait_for_journal(directory, journal_bytes)
        finally:
            child.kill()
            child.wait(WAIT)

        recovered = reopen(directory)
        try:
            fingerprint = recovered.model.fingerprint()
            stats = recovered.stats()
        finally:
            recovered.close()
        reference, adaptations = drift_reference(spool, directory)
        assert fingerprint == reference
        # The scenario alternates truths, so healing must actually have
        # fired — otherwise this test exercises nothing.
        assert adaptations > 0
        assert stats.drift_mode == "adapt"

    def test_double_crash_with_adaptations_recovers(self, tmp_path, spool):
        directory = tmp_path / "svc"
        for _round in range(2):
            child = spawn_child(directory, spool)
            try:
                tip = (
                    (directory / "ingest.jsonl").stat().st_size
                    if (directory / "ingest.jsonl").exists()
                    else 0
                )
                wait_for_journal(directory, tip + 6_000)
            finally:
                child.kill()
                child.wait(WAIT)
        recovered = reopen(directory)
        try:
            fingerprint = recovered.model.fingerprint()
        finally:
            recovered.close()
        reference, adaptations = drift_reference(spool, directory)
        assert fingerprint == reference
        assert adaptations > 0
