"""Picklable fault-injection chunk functions for the tile fan-out tests.

Same contract as :mod:`tests.faults.fault_lib` — module-level functions
(the process backend ships chunk functions by reference) coordinating
through sentinel files, with crash helpers guarded so they only ever
kill *worker* processes.  Each wrapper delegates to the real
:func:`repro.core.tiles.count_tile_chunk` after the injected fault, so
recovery exercises the production per-tile counting code byte for byte.

The context is a plain dict::

    {"inner": <TileContext>, "dir": <sentinel dir>, "main_pid": <pid>}
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

from repro.core.tiles import count_tile_chunk


def crash_once_tile_chunk(
    context: dict, blocks: Sequence[tuple[int, int]]
) -> list:
    """Kill the first worker process that picks up a chunk, mid-tile —
    before any tile of the chunk is written.  Retries recompute the
    identical integer stacks."""
    if os.getpid() != context["main_pid"]:
        sentinel = Path(context["dir"]) / "crashed"
        if not sentinel.exists():
            sentinel.touch()
            os._exit(13)
    return count_tile_chunk(context["inner"], blocks)


def crash_after_one_tile_chunk(
    context: dict, blocks: Sequence[tuple[int, int]]
) -> list:
    """Kill one worker *after* it has spilled the first tile of its
    chunk — the torn state a mid-chunk SIGKILL leaves behind: some tiles
    of the chunk durable and valid, the rest missing."""
    if (
        os.getpid() != context["main_pid"]
        and len(blocks) > 1
        and not (Path(context["dir"]) / "crashed").exists()
    ):
        (Path(context["dir"]) / "crashed").touch()
        count_tile_chunk(context["inner"], blocks[:1])
        os._exit(13)
    return count_tile_chunk(context["inner"], blocks)


def echo_tile_chunk(context: dict, blocks: Sequence[tuple[int, int]]) -> list:
    """The no-fault control."""
    return count_tile_chunk(context["inner"], blocks)
