"""Process-kill recovery tests for the ingest service.

The acceptance criterion from the serving design (docs/SERVING.md):
``kill -9`` the service at *any* point, restart it over the same
directory, and the recovered model is **bit-identical** — fingerprint
match — to an uninterrupted run over the same acknowledged batch
sequence.  The journal itself defines "acknowledged": every record that
survives replay was acknowledged, so the reference model is rebuilt by
``partial_fit``-ing exactly those records in order.

A SIGTERM variant checks the graceful path: drain the queue, snapshot,
exit 0, nothing left to replay.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.core.tends import Tends
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.serve import IngestJournal, IngestService, QuarantineStore
from repro.simulation import io as sim_io
from repro.simulation.engine import DiffusionSimulator

WAIT = 60.0

#: The child process: open the service, announce readiness, then submit
#: spooled batches forever (recycling them) so a kill always lands with
#: ingest/absorb traffic in flight.
CHILD = textwrap.dedent(
    """
    import itertools, sys, time
    from pathlib import Path

    from repro.core.tends import TendsModel
    from repro.serve import BatchPolicy, IngestService
    from repro.simulation import io as sim_io

    directory, spool, mode = Path(sys.argv[1]), Path(sys.argv[2]), sys.argv[3]
    batches = [
        sim_io.read_statuses_npz(path) for path in sorted(spool.glob("*.npz"))
    ]
    service = IngestService(
        directory,
        TendsModel.load(spool / "bootstrap" / "model.npz"),
        batch_policy=BatchPolicy(max_cascades=15, max_delay_seconds=0.01),
        snapshot_every=3,
    ).start()
    service.handle_signals()
    print("READY", flush=True)
    for batch in itertools.cycle(batches):
        if service.shutdown_requested:
            break
        try:
            service.submit(batch, timeout=5.0)
        except Exception:
            break
        service.wait_for_shutdown(0.01)
    service.close(drain=True)
    final = service.stats()
    print(f"DRAINED absorbed_seq={final.absorbed_seq} "
          f"journal_seq={final.journal_seq}", flush=True)
    """
)


@pytest.fixture(scope="module")
def spool(tmp_path_factory):
    """Bootstrap model + batch files shared by parent and child."""
    root = tmp_path_factory.mktemp("spool")
    truth = erdos_renyi_digraph(12, 0.15, seed=11)
    statuses = DiffusionSimulator(truth, seed=11).run(beta=200).statuses
    base = statuses.subset(range(120))
    estimator = Tends()
    estimator.fit(base)
    (root / "bootstrap").mkdir()
    estimator.model.save(root / "bootstrap" / "model.npz")
    sim_io.write_statuses_npz(base, root / "bootstrap" / "base.npz")
    for i in range(8):
        sim_io.write_statuses_npz(
            statuses.subset(range(120 + i * 10, 120 + (i + 1) * 10)),
            root / f"batch{i}.npz",
        )
    return root


def spawn_child(directory: Path, spool: Path, mode: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(Path("src").resolve()), env.get("PYTHONPATH", "")])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(directory), str(spool), mode],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert child.stdout.readline().strip() == "READY", (
        "child failed to start: " + child.stderr.read()
    )
    return child


def wait_for_journal(directory: Path, min_bytes: int, timeout: float = WAIT):
    """Block until the child has journaled a meaningful amount of work."""
    journal = directory / "ingest.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists() and journal.stat().st_size >= min_bytes:
            return
        time.sleep(0.01)
    raise AssertionError("child never journaled enough traffic")


def reference_over_acknowledged(spool: Path, directory: Path) -> str:
    """Fingerprint of an uninterrupted run over exactly the acknowledged
    (journaled, non-quarantined) sequence."""
    estimator = Tends()
    estimator.fit(sim_io.read_statuses_npz(spool / "bootstrap" / "base.npz"))
    quarantined = set(QuarantineStore.load(directory / "quarantine.jsonl"))
    for record in IngestJournal.replay(directory / "ingest.jsonl"):
        if record.seq not in quarantined:
            estimator.partial_fit(record.statuses)
    return estimator.model.fingerprint()


class TestKillMinusNine:
    @pytest.mark.parametrize("journal_bytes", [2_000, 20_000])
    def test_recovery_is_bit_identical_after_sigkill(
        self, tmp_path, spool, journal_bytes
    ):
        directory = tmp_path / "svc"
        child = spawn_child(directory, spool, "kill")
        try:
            wait_for_journal(directory, journal_bytes)
        finally:
            child.kill()  # SIGKILL: no drain, no final snapshot, no mercy
            child.wait(WAIT)

        recovered = IngestService(directory)
        try:
            fingerprint = recovered.model.fingerprint()
            watermark = recovered.stats().absorbed_seq
        finally:
            recovered.close()
        assert fingerprint == reference_over_acknowledged(spool, directory)
        assert watermark > 0

    def test_double_crash_recovers_too(self, tmp_path, spool):
        """Crash, recover, serve more, crash again — replay still exact."""
        directory = tmp_path / "svc"
        for _round in range(2):
            child = spawn_child(directory, spool, "kill")
            try:
                tip = (
                    (directory / "ingest.jsonl").stat().st_size
                    if (directory / "ingest.jsonl").exists()
                    else 0
                )
                wait_for_journal(directory, tip + 4_000)
            finally:
                child.kill()
                child.wait(WAIT)
        recovered = IngestService(directory)
        try:
            fingerprint = recovered.model.fingerprint()
        finally:
            recovered.close()
        assert fingerprint == reference_over_acknowledged(spool, directory)


class TestSigtermDrain:
    def test_sigterm_drains_snapshots_and_exits_cleanly(self, tmp_path, spool):
        directory = tmp_path / "svc"
        child = spawn_child(directory, spool, "term")
        try:
            wait_for_journal(directory, 4_000)
            child.send_signal(signal.SIGTERM)
            stdout, stderr = child.communicate(timeout=WAIT)
        except BaseException:
            child.kill()
            raise
        assert child.returncode == 0, stderr
        assert "DRAINED" in stdout

        # Graceful exit left nothing to replay: the final snapshot covers
        # every acknowledged, non-quarantined record.
        reopened = IngestService(directory)
        try:
            assert reopened.recovered_batches == 0
            fingerprint = reopened.model.fingerprint()
        finally:
            reopened.close()
        assert fingerprint == reference_over_acknowledged(spool, directory)
