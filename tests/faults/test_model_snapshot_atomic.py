"""Crash-atomicity of ``TendsModel.save``.

A service snapshots its model over the previous snapshot, so a kill
mid-save must never leave a truncated NPZ in place of a good one — the
write goes to a same-directory temp file and lands via ``os.replace``.
These tests interrupt the save at each stage and verify the previous
snapshot still loads bit-identically.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.tends import Tends, TendsModel
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.simulation.engine import DiffusionSimulator


@pytest.fixture(scope="module")
def fitted():
    truth = erdos_renyi_digraph(12, 0.15, seed=5)
    statuses = DiffusionSimulator(truth, seed=5).run(beta=120).statuses
    estimator = Tends()
    estimator.fit(statuses.subset(range(100)))
    first = estimator.model
    estimator.partial_fit(statuses.subset(range(100, statuses.beta)))
    return first, estimator.model


class CrashMidWrite(RuntimeError):
    """Stand-in for the process dying while the archive streams out."""


class TestCrashAtomicSave:
    def test_crash_during_archive_write_keeps_old_snapshot(
        self, tmp_path, fitted, monkeypatch
    ):
        old, new = fitted
        path = tmp_path / "model.npz"
        old.save(path)
        golden = path.read_bytes()

        def exploding_savez(handle, **arrays):
            handle.write(b"PK\x03\x04 truncated archive")
            raise CrashMidWrite("killed mid-write")

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        with pytest.raises(CrashMidWrite):
            new.save(path)
        # The target was never touched, and the aborted temp was removed.
        assert path.read_bytes() == golden
        assert TendsModel.load(path).fingerprint() == old.fingerprint()
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_crash_before_replace_keeps_old_snapshot(
        self, tmp_path, fitted, monkeypatch
    ):
        old, new = fitted
        path = tmp_path / "model.npz"
        old.save(path)
        golden = path.read_bytes()

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise CrashMidWrite("killed between write and rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(CrashMidWrite):
            new.save(path)
        monkeypatch.setattr(os, "replace", real_replace)
        assert path.read_bytes() == golden
        assert TendsModel.load(path).fingerprint() == old.fingerprint()

    def test_completed_save_replaces_atomically(self, tmp_path, fitted):
        old, new = fitted
        path = tmp_path / "model.npz"
        old.save(path)
        new.save(path)
        loaded = TendsModel.load(path)
        assert loaded.fingerprint() == new.fingerprint()
        assert loaded.fingerprint() != old.fingerprint()
        # No temp debris survives a successful save either.
        assert [p for p in tmp_path.iterdir()] == [path]

    def test_fingerprint_tracks_fitted_state(self, fitted):
        old, new = fitted
        assert old.fingerprint() == old.fingerprint()
        assert old.fingerprint() != new.fingerprint()
