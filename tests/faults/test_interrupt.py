"""Clean shutdown on KeyboardInterrupt / SIGTERM.

Run in a subprocess: the victim maps slow chunks, signals itself
mid-flight, and reports whether the interrupt propagated cleanly with no
orphaned worker processes.  The parent asserts on the report.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

VICTIM = """
import os, signal, sys, threading, time
import multiprocessing

from repro.core.executor import ExecutionPlan, ParallelExecutor, RetryPolicy
from tests.faults import fault_lib

strategy = sys.argv[1]
signal_name = sys.argv[2]

if signal_name == "SIGTERM":
    # Graceful-termination convention: translate SIGTERM into SystemExit
    # so the executor's interrupt path runs (Python only does this for
    # SIGINT out of the box).
    signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(143))

context = {"dir": sys.argv[3], "main_pid": os.getpid()}
plan = ExecutionPlan(
    strategy=strategy, n_jobs=2, chunk_size=1,
    retry=RetryPolicy(backoff_seconds=0.0),
)

def shoot():
    # Event-based arming: wait for a chunk to announce it is running
    # instead of guessing how long pool spin-up takes on this machine.
    if not fault_lib.wait_for_chunk_start(context["dir"], timeout=30.0):
        print("NO-CHUNK-START")
        os._exit(2)
    os.kill(os.getpid(), getattr(signal, signal_name))

threading.Thread(target=shoot, daemon=True).start()

try:
    ParallelExecutor(plan).map(
        fault_lib.slow_chunk, context, list(range(40))
    )
except (KeyboardInterrupt, SystemExit):
    orphans = multiprocessing.active_children()
    # Workers must be terminated and joined by the executor, not us.
    print("CLEAN" if not orphans else f"ORPHANS:{len(orphans)}")
    sys.exit(0)
print("NO-INTERRUPT")
sys.exit(1)
"""


def run_victim(strategy: str, signal_name: str, tmp_path: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}:{REPO_ROOT}"
    return subprocess.run(
        [sys.executable, "-c", VICTIM, strategy, signal_name, str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=60,
        env=env,
        cwd=REPO_ROOT,
    )


@pytest.mark.parametrize("strategy", ["thread", "process"])
def test_sigint_interrupts_cleanly_with_no_orphans(strategy, tmp_path):
    completed = run_victim(strategy, "SIGINT", tmp_path)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "CLEAN", (
        completed.stdout,
        completed.stderr,
    )


def test_sigterm_via_system_exit_shuts_down_cleanly(tmp_path):
    completed = run_victim("process", "SIGTERM", tmp_path)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "CLEAN", (
        completed.stdout,
        completed.stderr,
    )
