"""Executor recovery under injected faults.

Every test asserts the same two things: the merged output is exactly the
serial ground truth (the determinism contract survives recovery), and the
:class:`~repro.core.executor.RecoveryReport` records what the machinery
had to do.
"""

from __future__ import annotations

import os

import pytest

from repro.core.executor import ExecutionPlan, ParallelExecutor, RetryPolicy
from repro.exceptions import MethodTimeoutError, WorkerCrashError
from tests.faults import fault_lib

ITEMS = list(range(12))
EXPECTED = fault_lib.expected(ITEMS)


@pytest.fixture
def fault_context(tmp_path):
    context = {"dir": str(tmp_path), "main_pid": os.getpid()}
    yield context
    # Wake any abandoned hang simulations so they drain now, not after
    # sleeping out their full bound.
    fault_lib.release_workers(context)


def make_executor(
    strategy: str,
    *,
    max_attempts: int = 3,
    timeout: float | None = None,
    fallback: bool = True,
) -> ParallelExecutor:
    plan = ExecutionPlan(
        strategy=strategy,
        n_jobs=2,
        chunk_size=3,
        retry=RetryPolicy(
            max_attempts=max_attempts,
            backoff_seconds=0.01,
            timeout=timeout,
            fallback=fallback,
        ),
    )
    return ParallelExecutor(plan)


class TestTransientErrors:
    @pytest.mark.parametrize("strategy", ["serial", "thread", "process"])
    def test_raise_once_is_retried(self, strategy, fault_context):
        executor = make_executor(strategy)
        results, _ = executor.map(fault_lib.raise_once_chunk, fault_context, ITEMS)
        assert results == EXPECTED
        report = executor.last_report
        assert report.strategy == strategy
        assert report.retries >= 1
        assert report.fallbacks == 0

    @pytest.mark.parametrize("strategy", ["serial", "thread", "process"])
    def test_exhaustion_raises_the_original_exception(
        self, strategy, fault_context
    ):
        executor = make_executor(strategy, max_attempts=2)
        with pytest.raises(ValueError, match="permanent failure"):
            executor.map(fault_lib.always_raise_chunk, fault_context, ITEMS)

    def test_single_attempt_disables_retries(self, fault_context):
        executor = make_executor("thread", max_attempts=1)
        with pytest.raises(RuntimeError, match="transient failure"):
            executor.map(fault_lib.raise_once_chunk, fault_context, ITEMS)


class TestWorkerCrashes:
    def test_dead_worker_is_replaced(self, fault_context):
        executor = make_executor("process")
        results, _ = executor.map(fault_lib.crash_once_chunk, fault_context, ITEMS)
        assert results == EXPECTED
        report = executor.last_report
        assert report.strategy == "process"
        assert report.pool_rebuilds >= 1

    def test_persistent_crashes_fall_back_to_thread(self, fault_context):
        executor = make_executor("process", max_attempts=2)
        results, _ = executor.map(
            fault_lib.crash_always_chunk, fault_context, ITEMS
        )
        assert results == EXPECTED
        report = executor.last_report
        assert report.strategy == "thread"
        assert report.fallbacks >= 1

    def test_fallback_disabled_raises_worker_crash_error(self, fault_context):
        executor = make_executor("process", max_attempts=2, fallback=False)
        with pytest.raises(WorkerCrashError):
            executor.map(fault_lib.crash_always_chunk, fault_context, ITEMS)

    def test_unpicklable_context_still_completes(self):
        # A closure context cannot be pickled.  Under fork it ships for
        # free; under spawn/forkserver the broken pool triggers the
        # thread fallback.  Either way the caller gets correct results.
        executor = make_executor("process")
        context = {"offset": (lambda: 5)()}

        results, _ = executor.map(
            lambda ctx, items: [i + ctx["offset"] for i in items],
            context,
            ITEMS,
        )
        assert results == [i + 5 for i in ITEMS]


class TestHungChunks:
    def test_hang_times_out_and_retry_recovers(self, fault_context):
        executor = make_executor("thread", timeout=0.25)
        results, _ = executor.map(fault_lib.hang_once_chunk, fault_context, ITEMS)
        assert results == EXPECTED
        report = executor.last_report
        assert report.timeouts >= 1
        assert report.pool_rebuilds >= 1
        assert report.strategy == "thread"  # timeouts never fall back

    def test_timeout_exhaustion_raises(self, fault_context):
        executor = make_executor("thread", max_attempts=2, timeout=0.2)
        with pytest.raises(MethodTimeoutError) as excinfo:
            executor.map(fault_lib.hang_always_chunk, fault_context, ITEMS)
        assert excinfo.value.timeout == 0.2

    def test_no_timeout_means_unlimited(self, fault_context):
        executor = make_executor("thread", timeout=None)
        results, _ = executor.map(fault_lib.hang_once_chunk, fault_context, ITEMS)
        assert results == EXPECTED
        assert executor.last_report.timeouts == 0


class TestDeterminismUnderFaults:
    """Recovery must never change *what* is computed, only *how*."""

    @pytest.mark.parametrize(
        "chunk_fn",
        [
            fault_lib.raise_once_chunk,
            fault_lib.crash_once_chunk,
            fault_lib.crash_always_chunk,
        ],
        ids=["transient-error", "worker-crash", "persistent-crash"],
    )
    def test_faulted_run_matches_clean_serial_run(self, chunk_fn, fault_context):
        clean = make_executor("serial")
        baseline, _ = clean.map(fault_lib.echo_chunk, fault_context, ITEMS)
        faulted = make_executor("process")
        recovered, _ = faulted.map(chunk_fn, fault_context, ITEMS)
        assert recovered == baseline

    def test_report_is_all_quiet_on_clean_runs(self, fault_context):
        executor = make_executor("process")
        results, _ = executor.map(fault_lib.echo_chunk, fault_context, ITEMS)
        assert results == EXPECTED
        report = executor.last_report
        assert (report.retries, report.timeouts, report.pool_rebuilds,
                report.fallbacks) == (0, 0, 0, 0)
        assert report.strategy == "process"
