#!/usr/bin/env python
"""Quickstart: infer a diffusion network from final infection statuses only.

This is the 60-second tour of the library:

1. build a ground-truth diffusion network,
2. simulate ``beta`` diffusion processes on it (Independent Cascade with
   Gaussian per-edge propagation probabilities, as in the paper's setup),
3. hand TENDS *only* the final infection statuses — no timestamps, no
   seed sets, no edge-count prior,
4. compare the inferred topology against the truth.

Run:  python examples/quickstart.py [--n 120] [--beta 150] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import (
    DiffusionSimulator,
    LFRParams,
    Tends,
    evaluate_edges,
    lfr_benchmark_graph,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=120, help="number of nodes")
    parser.add_argument("--beta", type=int, default=150, help="number of diffusion processes")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    args = parser.parse_args()

    # 1. Ground truth: an LFR benchmark graph like the paper's Table II.
    truth = lfr_benchmark_graph(LFRParams(n=args.n, avg_degree=4, tau=2), seed=args.seed)
    print(f"ground truth: {truth.n_nodes} nodes, {truth.n_edges} directed edges")

    # 2. Observe beta diffusion processes (final statuses only).
    simulator = DiffusionSimulator(truth, mu=0.3, alpha=0.15, seed=args.seed)
    observations = simulator.run(beta=args.beta)
    statuses = observations.statuses
    print(
        f"observed {statuses.beta} processes; "
        f"average infection fraction {observations.infection_fraction():.2f}"
    )

    # 3. Infer the topology with TENDS.
    result = Tends().fit(statuses)
    print(
        f"TENDS: pruning threshold tau = {result.threshold:.5f}, "
        f"inferred {result.n_edges} edges in "
        f"{sum(result.stage_seconds.values()):.2f}s"
    )

    # 4. Score against the truth.
    metrics = evaluate_edges(truth, result.graph)
    print(
        f"precision = {metrics.precision:.3f}, "
        f"recall = {metrics.recall:.3f}, F-score = {metrics.f_score:.3f}"
    )


if __name__ == "__main__":
    main()
