#!/usr/bin/env python
"""Regenerate any of the paper's evaluation figures from the command line.

Every figure in §V is registered in ``repro.evaluation.figures``; this
script runs one of them and prints the rows the figure plots: per sweep
point, each algorithm's F-score and running time.

Run:  python examples/reproduce_figure.py fig1 [--scale quick|full] [--seed 0]
List: python examples/reproduce_figure.py --list
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation import figure_spec, list_figures, run_experiment
from repro.evaluation.reporting import format_result_table, format_series


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", nargs="?", help="figure id, e.g. fig1")
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick = reduced beta for a fast look; full = paper parameters",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list figure ids and exit")
    args = parser.parse_args()

    if args.list or not args.figure:
        print("available figures:", ", ".join(list_figures()))
        return 0

    spec = figure_spec(args.figure, scale=args.scale)
    print(f"running {spec.experiment_id} ({args.scale} scale): {spec.title}")
    result = run_experiment(
        spec,
        seed=args.seed,
        progress=lambda message: print(f"  {message}", file=sys.stderr),
    )
    print()
    print(format_result_table(result))
    print()
    print(format_series(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
