#!/usr/bin/env python
"""Deep-dive diagnostics of an inferred diffusion network.

The F-score says *how much* of a network was recovered; this example shows
the tools for understanding *what* was recovered and what it is good for:

1. infer a topology with TENDS,
2. produce the structural report (per-node recovery, degree correlations,
   hub overlap) from ``repro.analysis.compare``,
3. check that the inferred network preserves the community structure of
   the truth (label propagation + modularity),
4. parameterise the inferred edges with estimated propagation
   probabilities and pick campaign seeds by greedy influence maximisation
   — then verify the seeds chosen on the *inferred* network spread almost
   as well on the *true* network.

Run:  python examples/network_diagnostics.py [--n 150] [--beta 200]
"""

from __future__ import annotations

import argparse

from repro import (
    DiffusionSimulator,
    LFRParams,
    Tends,
    compare_topologies,
    estimate_edge_probabilities,
    estimate_spread,
    greedy_influence_maximization,
    label_propagation_communities,
    lfr_benchmark_graph,
    modularity,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=150)
    parser.add_argument("--beta", type=int, default=200)
    parser.add_argument("--seed", type=int, default=31)
    parser.add_argument("--campaign-seeds", type=int, default=5)
    args = parser.parse_args()

    truth = lfr_benchmark_graph(
        LFRParams(n=args.n, avg_degree=4, mixing=0.05), seed=args.seed
    )
    observations = DiffusionSimulator(truth, mu=0.3, alpha=0.15, seed=args.seed).run(
        beta=args.beta
    )
    inferred = Tends().fit(observations.statuses).graph

    print("structural report (truth vs inferred):")
    for key, value in compare_topologies(truth, inferred).items():
        print(f"  {key:28s} {value:.3f}")

    true_labels = label_propagation_communities(truth, seed=1)
    inferred_labels = label_propagation_communities(inferred, seed=1)
    print(
        f"\ncommunity structure: truth modularity "
        f"{modularity(truth, true_labels):.3f} "
        f"({len(set(true_labels.tolist()))} communities); inferred "
        f"{modularity(inferred, inferred_labels):.3f} "
        f"({len(set(inferred_labels.tolist()))} communities)"
    )

    probabilities = estimate_edge_probabilities(inferred, observations.statuses)
    seeds, planned = greedy_influence_maximization(
        inferred,
        args.campaign_seeds,
        probabilities,
        n_samples=100,
        seed=args.seed,
    )
    achieved = estimate_spread(
        truth,
        seeds,
        observations.probabilities,
        n_samples=300,
        seed=args.seed,
    )
    print(
        f"\ncampaign planning: seeds {seeds} "
        f"(planned spread on inferred network: {planned:.1f} nodes; "
        f"achieved on the true network: {achieved:.1f} of {truth.n_nodes})"
    )


if __name__ == "__main__":
    main()
