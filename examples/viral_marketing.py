#!/usr/bin/env python
"""Viral marketing: map who influences whom, then pick the next campaign's seeds.

Scenario (paper §I): a brand runs repeated promotional campaigns in a
community.  After each campaign it knows which users ended up adopting
(posting, buying, sharing) — but not *when* or *through whom*.  We:

1. simulate past campaigns on a hidden influence network with a dense
   influencer core and a broad periphery,
2. reconstruct the influence topology with TENDS and compare against the
   timestamp-based MulTree and the seed-based LIFT (both of which need
   extra observations and the true edge count),
3. use the *inferred* network to shortlist seed users for the next
   campaign (highest inferred out-degree) and check the shortlist against
   the true influencer core.

Run:  python examples/viral_marketing.py [--n 150] [--beta 150]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DiffusionSimulator,
    Lift,
    MulTree,
    Observations,
    TendsInferrer,
    core_periphery_digraph,
    evaluate_edges,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=150, help="community size")
    parser.add_argument("--beta", type=int, default=150, help="number of past campaigns")
    parser.add_argument("--seed", type=int, default=23, help="random seed")
    args = parser.parse_args()

    influence = core_periphery_digraph(
        args.n, core_fraction=0.12, core_density=0.4, periphery_attachment=2,
        seed=args.seed,
    )
    n_core = max(2, round(0.12 * args.n))
    print(
        f"hidden influence network: {influence.n_nodes} users, "
        f"{influence.n_edges} influence edges, {n_core} core influencers"
    )

    campaigns = DiffusionSimulator(
        influence, mu=0.3, alpha=0.1, seed=args.seed
    ).run(beta=args.beta)
    observations = Observations.from_simulation(campaigns)
    print(f"observed {campaigns.beta} campaigns (adoption statuses only for TENDS)")

    print("\nmethod comparison (directed-edge F-score):")
    methods = [
        ("TENDS  (statuses only)", TendsInferrer()),
        ("MulTree (needs timestamps + true m)", MulTree(influence.n_edges)),
        ("LIFT   (needs seed sets + true m)", Lift(influence.n_edges)),
    ]
    inferred_by_tends = None
    for label, method in methods:
        output = method.infer(observations)
        metrics = evaluate_edges(influence, output.graph)
        print(f"  {label:38s} F = {metrics.f_score:.3f}")
        if method.__class__.__name__ == "TendsInferrer":
            inferred_by_tends = output.graph

    # Seed selection for the next campaign: highest inferred influence
    # fan-out.  Compare the shortlist against the true core.
    assert inferred_by_tends is not None
    out_degrees = inferred_by_tends.out_degrees()
    shortlist = np.argsort(-out_degrees)[:n_core]
    hits = sum(1 for user in shortlist.tolist() if user < n_core)
    print(
        f"\nseed shortlist: top {n_core} users by inferred influence; "
        f"{hits}/{n_core} are true core influencers "
        f"(random guessing would get {n_core * n_core / args.n:.1f})"
    )


if __name__ == "__main__":
    main()
