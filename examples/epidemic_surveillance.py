#!/usr/bin/env python
"""Epidemic surveillance: recover a contact network from outbreak snapshots.

Scenario (the paper's §I motivation): a health agency observes, for each of
several independent outbreaks, only *who ended up infected* — incubation
periods make onset timestamps unreliable, so cascade-based methods are off
the table.  The contact network is small-world (households + occasional
long-range contacts).  We:

1. simulate outbreaks with the SI model (infectious individuals keep
   exposing their contacts until the observation horizon),
2. reconstruct the contact network with TENDS from the final statuses,
3. stress-test the reconstruction against status-reporting errors
   (misdiagnoses flip a fraction of the observed statuses).

Run:  python examples/epidemic_surveillance.py [--n 100] [--beta 200]
"""

from __future__ import annotations

import argparse

from repro import (
    DiffusionGraph,
    DiffusionSimulator,
    SusceptibleInfectedModel,
    Tends,
    evaluate_edges,
    watts_strogatz_digraph,
)


def build_contact_network(n: int, seed: int) -> DiffusionGraph:
    """Small-world contacts, symmetric: disease can pass either way."""
    ring = watts_strogatz_digraph(n, k_neighbors=2, rewire_probability=0.08, seed=seed)
    contacts = DiffusionGraph(n)
    for u, v in ring.edges():
        contacts.add_edge(u, v)
        contacts.add_edge(v, u)
    return contacts.freeze()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100, help="population size")
    parser.add_argument("--beta", type=int, default=200, help="number of observed outbreaks")
    parser.add_argument("--seed", type=int, default=11, help="random seed")
    args = parser.parse_args()

    contacts = build_contact_network(args.n, args.seed)
    print(f"contact network: {contacts.n_nodes} people, {contacts.n_edges} directed contacts")

    simulator = DiffusionSimulator(
        contacts,
        mu=0.25,  # per-round transmission probability between contacts
        alpha=0.05,  # each outbreak starts from a few index cases
        model=SusceptibleInfectedModel(horizon=6),
        seed=args.seed,
    )
    outbreaks = simulator.run(beta=args.beta)
    print(
        f"observed {outbreaks.beta} outbreaks; "
        f"mean attack rate {outbreaks.infection_fraction():.2f}"
    )

    clean = Tends().fit(outbreaks.statuses)
    metrics = evaluate_edges(contacts, clean.graph)
    print(
        "clean statuses:  "
        f"P = {metrics.precision:.3f}  R = {metrics.recall:.3f}  "
        f"F = {metrics.f_score:.3f}"
    )

    # Surveillance data is noisy: flip a fraction of statuses (false
    # positives from misdiagnosis, false negatives from asymptomatic cases).
    for noise in (0.02, 0.05, 0.10):
        noisy = outbreaks.statuses.with_flip_noise(noise, seed=args.seed)
        result = Tends().fit(noisy)
        noisy_metrics = evaluate_edges(contacts, result.graph)
        print(
            f"{noise:4.0%} misreport: "
            f"P = {noisy_metrics.precision:.3f}  R = {noisy_metrics.recall:.3f}  "
            f"F = {noisy_metrics.f_score:.3f}"
        )

    print(
        "\nNote: timestamps were never used — TENDS works from the final"
        " infection statuses alone."
    )


if __name__ == "__main__":
    main()
