"""Legacy setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` keeps working in fully offline environments
where pip cannot fetch the ``wheel`` build dependency that editable
installs otherwise require.
"""

from setuptools import setup

setup()
